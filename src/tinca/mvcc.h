// Lock-free snapshot reads: per-block version chains pinned by a commit
// epoch (single writer / concurrent readers — DESIGN.md §12).
//
// The paper's entry already holds a two-deep version history (prev/cur,
// §4.3); MvccTable extends that pair into a short immutable chain per disk
// block, kept entirely in DRAM next to the cache's other rebuildable
// bookkeeping (index, LRU, free monitors — §4.6).  The contract:
//
//   * ONE writer — the thread holding the shard mutex — performs every
//     mutation: version publication at commit, node retirement at eviction,
//     trimming and freeing during reclamation.  No CAS loops anywhere.
//   * ANY number of readers traverse concurrently with acquire loads only.
//     A reader pins a commit epoch (pin()) and resolves each block to the
//     newest version with epoch <= its pin; data blocks referenced by a
//     chain are immutable (COW never rewrites them) and are returned to the
//     free pool only when no live pin could still reach them.
//
// Epoch protocol.  `commit_epoch` starts at 1 and is bumped by the writer
// AFTER the per-shard Tail publication, so a version rec carrying epoch E+1
// becomes visible exactly when the transaction that wrote it is durable.
// Readers therefore observe committed-boundary snapshots by construction: a
// mid-commit transaction's recs exist but carry a future epoch.
//
// Pin registry.  A fixed array of atomic epoch slots (0 = free).  The pin
// handshake is the standard seq_cst epoch-based-reclamation dance:
//
//     do { e = epoch.load(); slot.store(e); } while (epoch.load() != e);
//
// Sequential consistency gives the reclaimer a clean either/or: either the
// reclaimer's registry scan sees the pin (and keeps everything epoch e may
// need), or the reader's re-load sees a newer epoch and retries with it.  A
// full registry fails the pin; callers fall back to the locked read path.
//
// Reclamation (single writer, piggybacked on the cleaner quantum and on
// commits) trims a chain suffix v_i, v_{i-1}, ... when min_pin >= e_{i+1}:
// every live pin then stops its walk at v_{i+1} or newer and never loads the
// trimmed recs, so their memory and NVM blocks are reusable immediately.
// Whole chains of evicted blocks are retired in two phases: unlink from the
// bucket once min_pin >= the head's epoch (disk already holds the head's
// data, so late readers fall back to disk and read the same bytes), then
// free once min_pin has advanced *past* the unlink epoch or the registry has
// drained — any reader that could have found the node before the unlink has
// unpinned by then.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/expect.h"

namespace tinca::core {

/// Aggregated MVCC counters.  Readers bump these without the shard lock, so
/// everything is a relaxed atomic; register_metrics exports them as gauges.
struct MvccStats {
  std::atomic<std::uint64_t> snapshot_reads{0};     ///< resolved via a chain
  std::atomic<std::uint64_t> disk_fallbacks{0};     ///< no version <= pin
  std::atomic<std::uint64_t> lock_fallbacks{0};     ///< pin registry full
  std::atomic<std::uint64_t> pin_retries{0};        ///< epoch moved mid-pin
  std::atomic<std::uint64_t> versions_published{0};
  std::atomic<std::uint64_t> versions_trimmed{0};
  std::atomic<std::uint64_t> nodes_retired{0};      ///< chains of evicted blocks
  std::atomic<std::uint64_t> nodes_freed{0};
  std::atomic<std::uint64_t> recovery_seeded{0};    ///< chains rebuilt at mount
};

/// One committed version of one disk block.  Immutable after publication
/// except `older`, which only ever steps toward null (suffix trimming).
struct VersionRec {
  std::uint64_t epoch = 0;       ///< commit epoch this version became visible
  std::uint32_t nvm_block = 0;   ///< NVM data block holding the bytes
  std::atomic<VersionRec*> older{nullptr};
};

/// Per-disk-block chain head, hanging off a hash bucket.  `chain` is newest
/// first (descending epoch).  `next` links the bucket's node list.  The two
/// plain bools are writer-side bookkeeping, never read concurrently.
struct BlockNode {
  std::uint64_t disk_blkno = 0;
  std::atomic<VersionRec*> chain{nullptr};
  std::atomic<BlockNode*> next{nullptr};
  bool in_multi = false;  ///< on the reclaimer's multi-version worklist
  bool retired = false;   ///< block evicted; chain frozen, awaiting reclaim
};

/// Snapshot handle returned by MvccTable::pin().
struct SnapshotPin {
  static constexpr std::uint32_t kNoSlot = 0xFFFF'FFFFu;
  std::uint32_t slot = kNoSlot;  ///< registry slot, kNoSlot = pin failed
  std::uint64_t epoch = 0;       ///< pinned commit epoch

  [[nodiscard]] bool valid() const { return slot != kNoSlot; }
};

/// The version-chain table for one TincaCache (one shard).
class MvccTable {
 public:
  /// `expected_blocks` sizes the bucket array (rounded up to a power of 2).
  explicit MvccTable(std::uint64_t expected_blocks) {
    std::uint64_t n = 16;
    while (n < expected_blocks * 2) n <<= 1;
    buckets_ = std::vector<std::atomic<BlockNode*>>(n);
    mask_ = n - 1;
  }

  ~MvccTable() {
    for (auto& head : buckets_) {
      BlockNode* node = head.load(std::memory_order_relaxed);
      while (node != nullptr) {
        BlockNode* next = node->next.load(std::memory_order_relaxed);
        destroy_node(node);
        node = next;
      }
    }
    // Retired nodes stay in their bucket until reclamation unlinks them —
    // the bucket walk above already freed those, so only unlinked ones are
    // left to us.
    for (const Retired& r : retired_)
      if (r.unlinked) destroy_node(r.node);
  }

  MvccTable(const MvccTable&) = delete;
  MvccTable& operator=(const MvccTable&) = delete;

  // --- Reader side (lock-free) ---------------------------------------------

  /// Current commit epoch (acquire).
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Pin the current epoch.  Lock-free; fails (slot == kNoSlot) only when
  /// every registry slot is taken — callers then use the locked read path.
  [[nodiscard]] SnapshotPin pin() {
    for (std::uint32_t s = 0; s < kPinSlots; ++s) {
      std::uint64_t expect = 0;
      if (!pins_[s].compare_exchange_strong(expect, kClaiming,
                                            std::memory_order_seq_cst))
        continue;
      // Slot claimed; now run the epoch handshake (see file comment).
      std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
      for (;;) {
        pins_[s].store(e, std::memory_order_seq_cst);
        const std::uint64_t again = epoch_.load(std::memory_order_seq_cst);
        if (again == e) break;
        stats.pin_retries.fetch_add(1, std::memory_order_relaxed);
        e = again;
      }
      return SnapshotPin{s, e};
    }
    stats.lock_fallbacks.fetch_add(1, std::memory_order_relaxed);
    return SnapshotPin{};
  }

  /// Release a pin obtained from pin().
  void unpin(const SnapshotPin& p) {
    if (!p.valid()) return;
    TINCA_EXPECT(p.slot < kPinSlots, "unpin of an out-of-range slot");
    pins_[p.slot].store(0, std::memory_order_seq_cst);
  }

  /// Resolve `disk_blkno` to the newest version with epoch <= `snap_epoch`,
  /// or nullptr (caller falls back to disk).  Caller must hold a pin whose
  /// epoch is >= snap_epoch for the whole resolve+copy window.
  ///
  /// A block evicted and later re-cached has TWO nodes in its bucket: the
  /// retired chain (old versions, kept for pinned readers) shadowed by the
  /// fresh one at the bucket head.  The best version across all of them
  /// wins, so old pins keep resolving through the retired chain.
  [[nodiscard]] const VersionRec* resolve(std::uint64_t disk_blkno,
                                          std::uint64_t snap_epoch) const {
    const VersionRec* best = nullptr;
    const BlockNode* node =
        buckets_[bucket_of(disk_blkno)].load(std::memory_order_acquire);
    for (; node != nullptr; node = node->next.load(std::memory_order_acquire)) {
      if (node->disk_blkno != disk_blkno) continue;
      const VersionRec* rec = node->chain.load(std::memory_order_acquire);
      while (rec != nullptr && rec->epoch > snap_epoch)
        rec = rec->older.load(std::memory_order_acquire);
      if (rec != nullptr && (best == nullptr || rec->epoch > best->epoch))
        best = rec;
    }
    return best;
  }

  /// Bucket lookup (acquire walk); safe concurrently with writer mutation.
  [[nodiscard]] const BlockNode* find(std::uint64_t disk_blkno) const {
    const BlockNode* node =
        buckets_[bucket_of(disk_blkno)].load(std::memory_order_acquire);
    while (node != nullptr && node->disk_blkno != disk_blkno)
      node = node->next.load(std::memory_order_acquire);
    return node;
  }

  // --- Writer side (caller holds the shard lock) ---------------------------

  /// Publish `nvm_block` as the version of `disk_blkno` for epoch
  /// `epoch() + 1`.  Called after the ring Tail publication, before bump().
  void publish(std::uint64_t disk_blkno, std::uint32_t nvm_block) {
    publish_at(disk_blkno, nvm_block,
               epoch_.load(std::memory_order_relaxed) + 1);
  }

  /// Publish a *baseline* version: the block's committed bytes as they
  /// stood when the cache (re-)filled them from disk (clean fill or
  /// recovery survivor).  Normally published at epoch 1, which is <= every
  /// possible pin, so any reader resolves to it rather than falling through
  /// to a disk whose content a concurrent cleaning may be advancing.
  ///
  /// When retired chains for the block still hang in the bucket (evicted
  /// while a pinned reader kept them resolvable), the fill bytes are
  /// exactly the newest retired head's bytes — its eviction writeback put
  /// them on disk, and an uncached block's disk content never advances — so
  /// the baseline is published at that head's epoch instead.  An epoch-1
  /// rec on the fresh node would tie with the retired chain's own baseline
  /// and capture old pins with post-pin bytes (snapshot-isolation
  /// violation).  Must only be called when the block has no live chain.
  void publish_baseline(std::uint64_t disk_blkno, std::uint32_t nvm_block) {
    TINCA_EXPECT(find_mutable(disk_blkno) == nullptr,
                 "baseline publish over a live chain");
    std::uint64_t at = 1;
    for (const BlockNode* node =
             buckets_[bucket_of(disk_blkno)].load(std::memory_order_relaxed);
         node != nullptr; node = node->next.load(std::memory_order_relaxed)) {
      if (node->disk_blkno != disk_blkno) continue;
      const VersionRec* head = node->chain.load(std::memory_order_relaxed);
      if (head != nullptr && head->epoch > at) at = head->epoch;
    }
    publish_at(disk_blkno, nvm_block, at);
  }

  /// Make every version published since the last bump visible to new pins.
  /// Called once per committed transaction, after its Tail publication.
  void bump() { epoch_.fetch_add(1, std::memory_order_seq_cst); }

  /// The evicted block's chain stays resolvable (pinned readers may still
  /// need an old version); reclamation unlinks and frees it once no pin can
  /// reach it.  No-op when the block has no chain.
  void retire(std::uint64_t disk_blkno) {
    BlockNode* node = find_mutable(disk_blkno);
    if (node == nullptr) return;
    node->retired = true;
    if (node->in_multi) {
      // The retired pass owns it now; drop it from the multi worklist.
      node->in_multi = false;
      multi_nodes_.erase(
          std::find(multi_nodes_.begin(), multi_nodes_.end(), node));
    }
    retired_.push_back(Retired{node, /*unlinked=*/false, /*unlink_epoch=*/0});
    stats.nodes_retired.fetch_add(1, std::memory_order_relaxed);
  }

  /// Whether `disk_blkno` currently has a live (non-retired) chain whose
  /// newest version is `nvm_block` — the ownership test the cache runs
  /// before returning an NVM block to the free pool.
  [[nodiscard]] bool owns(std::uint64_t disk_blkno,
                          std::uint32_t nvm_block) const {
    const BlockNode* node = find(disk_blkno);
    if (node == nullptr) return false;
    const VersionRec* rec = node->chain.load(std::memory_order_relaxed);
    while (rec != nullptr) {
      if (rec->nvm_block == nvm_block) return true;
      rec = rec->older.load(std::memory_order_relaxed);
    }
    return false;
  }

  /// Oldest version epoch still resolvable for `disk_blkno` across ALL of
  /// its chains — the live one and any retired generations still linked —
  /// or 0 when the block has no chain at all.  Writer side: the cache's
  /// disk-write defer rule — a pin below this epoch resolves to nothing in
  /// NVM and depends on the CURRENT disk content, so the disk must not be
  /// advanced while such a pin lives.  Retired chains count because they
  /// keep covering old pins in NVM: a re-fill baseline published at the
  /// retired head's epoch must not make the live chain alone look like it
  /// strands pins the retired generation still serves.
  [[nodiscard]] std::uint64_t oldest_live_epoch(
      std::uint64_t disk_blkno) const {
    std::uint64_t oldest = 0;
    const BlockNode* node =
        buckets_[bucket_of(disk_blkno)].load(std::memory_order_relaxed);
    for (; node != nullptr; node = node->next.load(std::memory_order_relaxed)) {
      if (node->disk_blkno != disk_blkno) continue;
      const VersionRec* rec = node->chain.load(std::memory_order_relaxed);
      while (rec != nullptr) {
        if (oldest == 0 || rec->epoch < oldest) oldest = rec->epoch;
        rec = rec->older.load(std::memory_order_relaxed);
      }
    }
    return oldest;
  }

  /// Minimum pinned epoch across the registry, or `epoch()` when no reader
  /// is pinned (the floor keeps reclamation monotone and never infinite).
  [[nodiscard]] std::uint64_t min_pin() const {
    std::uint64_t m = epoch_.load(std::memory_order_seq_cst);
    for (std::uint32_t s = 0; s < kPinSlots; ++s) {
      const std::uint64_t p = pins_[s].load(std::memory_order_seq_cst);
      if (p != 0 && p != kClaiming && p < m) m = p;
    }
    return m;
  }

  /// Whether any registry slot is currently pinned (or mid-claim).
  [[nodiscard]] bool any_pin() const {
    for (std::uint32_t s = 0; s < kPinSlots; ++s)
      if (pins_[s].load(std::memory_order_seq_cst) != 0) return true;
    return false;
  }

  /// One reclamation pass (writer only).  Trims chain suffixes no pin can
  /// reach and advances retired chains through unlink → free.  Freed NVM
  /// blocks are appended to `freed_nvm_blocks` for the cache to return to
  /// its free monitor.
  void reclaim(std::vector<std::uint32_t>& freed_nvm_blocks) {
    const std::uint64_t floor = min_pin();

    // Suffix-trim multi-version chains: rec v_i (with newer neighbour
    // v_{i+1}) is unreachable once min_pin >= e_{i+1}.
    for (std::size_t i = 0; i < multi_nodes_.size(); ) {
      BlockNode* node = multi_nodes_[i];
      VersionRec* keep = node->chain.load(std::memory_order_relaxed);
      trim_after(keep, floor, freed_nvm_blocks);
      if (keep == nullptr ||
          keep->older.load(std::memory_order_relaxed) == nullptr) {
        node->in_multi = false;  // single-version again: off the worklist
        multi_nodes_[i] = multi_nodes_.back();
        multi_nodes_.pop_back();
      } else {
        ++i;
      }
    }

    // Retired chains.  Unlink once every pin is >= the head's epoch — disk
    // then holds data every pinned and future reader accepts (the eviction
    // writeback put the head's bytes there, and the disk-write defer rule
    // keeps it from advancing while an older pin lives).  Free one epoch
    // after the unlink: a reader that found the node before the unlink
    // carries a pin <= unlink_epoch, so min_pin > unlink_epoch (or an empty
    // registry) proves nobody can still be traversing it.
    for (std::size_t i = 0; i < retired_.size(); ) {
      Retired& r = retired_[i];
      if (!r.unlinked) {
        VersionRec* head = r.node->chain.load(std::memory_order_relaxed);
        trim_after(head, floor, freed_nvm_blocks);
        if (head == nullptr || floor >= head->epoch) {
          unlink(r.node);
          r.unlinked = true;
          r.unlink_epoch = epoch_.load(std::memory_order_relaxed);
        }
      }
      // Unlink and free may happen in the SAME pass: with the registry
      // empty there is no traversal to wait out, and eviction on a full
      // cache depends on the block coming back in one reclaim call.
      if (r.unlinked && (!any_pin() || min_pin() > r.unlink_epoch)) {
        free_node(r.node, freed_nvm_blocks);
        retired_[i] = retired_.back();
        retired_.pop_back();
      } else {
        ++i;
      }
    }
  }

  [[nodiscard]] std::uint64_t live_versions() const { return live_versions_; }
  [[nodiscard]] std::uint64_t retired_nodes() const { return retired_.size(); }

  /// Mutable: reader-side paths (const) bump these relaxed counters.
  mutable MvccStats stats;

 private:
  static constexpr std::uint32_t kPinSlots = 256;
  /// Registry slot value while a reader is mid-handshake.  any_pin() counts
  /// it as pinned (conservative), but min_pin() deliberately skips it: the
  /// store/re-check handshake forces a claiming reader to retry after any
  /// epoch bump, so the pin it eventually lands on is >= every floor the
  /// reclaimer could have computed while the slot still read kClaiming —
  /// ignoring the slot can never let a trim strand that reader.
  static constexpr std::uint64_t kClaiming = ~std::uint64_t{0};

  struct Retired {
    BlockNode* node;
    bool unlinked;
    std::uint64_t unlink_epoch;
  };

  [[nodiscard]] std::size_t bucket_of(std::uint64_t disk_blkno) const {
    std::uint64_t x = disk_blkno + 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x & mask_);
  }

  [[nodiscard]] BlockNode* find_mutable(std::uint64_t disk_blkno) {
    // A retired (evicted) chain still sits in its bucket until reclamation
    // unlinks it, but it must no longer be found by the *writer*: a re-cached
    // block gets a fresh node so the old chain's history stays frozen.
    BlockNode* node =
        buckets_[bucket_of(disk_blkno)].load(std::memory_order_relaxed);
    while (node != nullptr &&
           (node->disk_blkno != disk_blkno || node->retired))
      node = node->next.load(std::memory_order_relaxed);
    return node;
  }

  void publish_at(std::uint64_t disk_blkno, std::uint32_t nvm_block,
                  std::uint64_t at_epoch) {
    BlockNode* node = find_mutable(disk_blkno);
    if (node == nullptr) {
      node = new BlockNode;
      node->disk_blkno = disk_blkno;
      auto& head = buckets_[bucket_of(disk_blkno)];
      node->next.store(head.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      head.store(node, std::memory_order_release);  // now reader-reachable
    }
    auto* rec = new VersionRec;
    rec->epoch = at_epoch;
    rec->nvm_block = nvm_block;
    VersionRec* old_head = node->chain.load(std::memory_order_relaxed);
    TINCA_EXPECT(old_head == nullptr || at_epoch > old_head->epoch,
                 "version published out of epoch order");
    rec->older.store(old_head, std::memory_order_relaxed);
    node->chain.store(rec, std::memory_order_release);
    if (old_head != nullptr && !node->in_multi) {
      node->in_multi = true;
      multi_nodes_.push_back(node);
    }
    ++live_versions_;
    stats.versions_published.fetch_add(1, std::memory_order_relaxed);
  }

  /// Trim every rec older than `keep`'s successor chain that no pin with
  /// epoch >= floor can reach: walking from `keep`, cut at the first rec
  /// whose *newer* neighbour has epoch <= floor.
  void trim_after(VersionRec* keep, std::uint64_t floor,
                  std::vector<std::uint32_t>& freed) {
    VersionRec* newer = keep;
    while (newer != nullptr) {
      VersionRec* rec = newer->older.load(std::memory_order_relaxed);
      if (rec != nullptr && newer->epoch <= floor) {
        newer->older.store(nullptr, std::memory_order_release);
        while (rec != nullptr) {
          VersionRec* next = rec->older.load(std::memory_order_relaxed);
          freed.push_back(rec->nvm_block);
          delete rec;
          --live_versions_;
          stats.versions_trimmed.fetch_add(1, std::memory_order_relaxed);
          rec = next;
        }
        return;
      }
      newer = rec;
    }
  }

  /// Remove `node` from its bucket list (writer only; readers mid-walk keep
  /// a consistent view because the node itself is not freed yet).
  void unlink(BlockNode* node) {
    auto& head = buckets_[bucket_of(node->disk_blkno)];
    BlockNode* cur = head.load(std::memory_order_relaxed);
    if (cur == node) {
      head.store(node->next.load(std::memory_order_relaxed),
                 std::memory_order_release);
      return;
    }
    while (cur != nullptr) {
      BlockNode* next = cur->next.load(std::memory_order_relaxed);
      if (next == node) {
        cur->next.store(node->next.load(std::memory_order_relaxed),
                        std::memory_order_release);
        return;
      }
      cur = next;
    }
    TINCA_ENSURE(false, "retired MVCC node vanished from its bucket");
  }

  void free_node(BlockNode* node, std::vector<std::uint32_t>& freed) {
    VersionRec* rec = node->chain.load(std::memory_order_relaxed);
    while (rec != nullptr) {
      VersionRec* next = rec->older.load(std::memory_order_relaxed);
      freed.push_back(rec->nvm_block);
      delete rec;
      --live_versions_;
      rec = next;
    }
    delete node;
    stats.nodes_freed.fetch_add(1, std::memory_order_relaxed);
  }

  static void destroy_node(BlockNode* node) {
    VersionRec* rec = node->chain.load(std::memory_order_relaxed);
    while (rec != nullptr) {
      VersionRec* next = rec->older.load(std::memory_order_relaxed);
      delete rec;
      rec = next;
    }
    delete node;
  }

  std::vector<std::atomic<BlockNode*>> buckets_;
  std::uint64_t mask_ = 0;
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> pins_[kPinSlots]{};
  std::vector<BlockNode*> multi_nodes_;  ///< nodes with >= 2 versions
  std::vector<Retired> retired_;
  std::uint64_t live_versions_ = 0;
};

}  // namespace tinca::core
