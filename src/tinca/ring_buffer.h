// Persistent ring of self-validating commit records (paper §4.4, reworked
// for group commit — DESIGN.md §14).
//
// Format v1 gave every transaction its own persistent Head/Tail pointer
// updates: each committed block cost a record flush + fence plus two more
// pointer persists.  Format v2 removes every per-record fence from the ring:
//
//   * a **block record** (32 B: kind, disk blkno, NVM block, stored payload
//     fingerprint, checksum) is *staged* with a plain store — no flush;
//   * a **batch commit record** seals a batch of block records; the whole
//     batch (data, entries, records) becomes durable with ONE clflush pass
//     and ONE sfence issued by the cache's commit path — that fence is the
//     batch's commit point;
//   * records validate by a 64-bit checksum mixing the record fields with
//     the record's monotonic index (which encodes its wrap lap) and the
//     superblock's format epoch, so stale slots — earlier laps, earlier
//     lives of the device — can never splice into a recovery scan;
//   * instead of a fenced Tail publication, a lazily-persisted **commit
//     hint** (one 8 B superblock field, stored without a flush at batch
//     publish and swept out by the *next* batch's flush pass) tells recovery
//     where to start scanning.  Everything below the durable hint is fully
//     durable and role-switched; recovery re-validates everything above it.
//
// Head and Tail are DRAM-only monotonic indices here (head = next record to
// stage, tail = end of the newest published batch); nothing per-commit is
// fenced by this class at all.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <utility>

#include "common/bytes.h"
#include "nvm/nvm_device.h"
#include "tinca/layout.h"

namespace tinca::core {

/// A decoded, validated ring record.
struct RingRecord {
  enum class Kind : std::uint8_t { kBlock = 1, kCommit = 2 };

  Kind kind = Kind::kBlock;
  std::uint64_t disk_blkno = 0;  ///< block records
  std::uint32_t curr_nvm = 0;    ///< block records: committed NVM block
  std::uint64_t payload_fp = 0;  ///< block: data fingerprint; commit: batch start
  std::uint64_t txn_count = 0;   ///< commit records: transactions in the batch

  /// Commit records store the monotonic index of the batch's first record.
  [[nodiscard]] std::uint64_t batch_start() const { return payload_fp; }
};

/// Wrapper over the NVM ring region and the superblock hint/epoch fields.
class RingBuffer {
 public:
  RingBuffer(nvm::NvmDevice& nvm, const Layout& layout)
      : nvm_(nvm), layout_(layout) {}

  /// Initialize a fresh ring: hint = 0 persisted, epoch bumped (the caller
  /// formats the epoch field; this just resets the indices).
  void format();

  /// Mount path: load the durable commit hint and start head/tail from it.
  /// Recovery advances head/tail as it scans and calls reset() when done.
  void load();

  /// Monotonic head index (next record to stage).
  [[nodiscard]] std::uint64_t head() const { return head_; }

  /// Monotonic tail index (end of the newest published batch).
  [[nodiscard]] std::uint64_t tail() const { return tail_; }

  /// Records staged but not yet published (the open batch).
  [[nodiscard]] std::uint64_t in_flight() const { return head_ - tail_; }

  /// Record capacity.
  [[nodiscard]] std::uint64_t capacity() const { return layout_.ring_capacity; }

  /// The durable commit hint (start of recovery's scan window).
  [[nodiscard]] std::uint64_t durable_hint() const { return durable_hint_; }

  /// Whether `n` more records fit without overwriting the scan window
  /// [durable_hint, head).  When false the owner must hint_sync() first.
  [[nodiscard]] bool has_room(std::uint64_t n) const {
    return head_ + n - durable_hint_ <= capacity();
  }

  /// Stage a block record at head (plain store, no flush).  Returns the
  /// stored byte range for the caller's batch flush pass.
  std::pair<std::uint64_t, std::uint64_t> stage_block(std::uint64_t disk_blkno,
                                                      std::uint32_t curr_nvm,
                                                      std::uint64_t data_fp);

  /// Stage the batch commit record sealing [batch_start, head) for
  /// `txn_count` merged transactions.  Returns the stored byte range.
  std::pair<std::uint64_t, std::uint64_t> stage_commit(std::uint64_t batch_start,
                                                       std::uint64_t txn_count);

  /// Publish the staged batch: tail := head (DRAM) and stage the commit
  /// hint := batch start (8 B atomic store, no flush).  Returns the hint
  /// field's byte range, to be swept out by the NEXT batch's flush pass.
  std::pair<std::uint64_t, std::uint64_t> publish(std::uint64_t batch_start);

  /// The owner's flush pass covered the hint line staged by the previous
  /// publish() and fenced: the staged hint value is now the durable one.
  void note_staged_hint_durable();

  /// Durably persist hint := tail now (flush + fence).  Slow path: ring-full
  /// backpressure, eviction of a newest-batch block, recovery epilogue.
  void persist_hint();

  /// Abort/revoke path: retract head to the published tail (DRAM only —
  /// staged records above tail are garbage no scan can validate once they
  /// are superseded, and recovery discards unsealed runs anyway).
  void reset_head_to_tail() { head_ = tail_; }

  /// Recovery: force both indices (e.g. to the end of the validated scan).
  void set_indices(std::uint64_t head, std::uint64_t tail) {
    head_ = head;
    tail_ = tail;
  }

  /// Decode and validate the record at monotonic index `idx` against
  /// `format_epoch`; nullopt when the slot does not hold a valid record for
  /// exactly that index/lap/epoch.
  [[nodiscard]] std::optional<RingRecord> scan(std::uint64_t idx,
                                               std::uint64_t format_epoch) const;

  /// The record checksum (exposed for verify_media and tests).
  static std::uint64_t checksum(std::uint64_t w0, std::uint64_t w1,
                                std::uint64_t w2, std::uint64_t idx,
                                std::uint64_t format_epoch);

 private:
  void stage_record(std::uint64_t w0, std::uint64_t w1, std::uint64_t w2);

  nvm::NvmDevice& nvm_;
  const Layout& layout_;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
  std::uint64_t durable_hint_ = 0;
  std::uint64_t staged_hint_ = 0;  ///< hint value stored but not yet fenced
  std::uint64_t epoch_ = 0;        ///< cached superblock format epoch
};

}  // namespace tinca::core
