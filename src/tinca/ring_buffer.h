// Persistent ring of self-validating commit records (paper §4.4, reworked
// for group commit — DESIGN.md §14 — and multi-stream commit — §15).
//
// Format v1 gave every transaction its own persistent Head/Tail pointer
// updates: each committed block cost a record flush + fence plus two more
// pointer persists.  Format v2 removes every per-record fence from the ring:
//
//   * a **block record** (32 B: kind, disk blkno, NVM block, stored payload
//     fingerprint, checksum) is *staged* with a plain store — no flush;
//   * a **batch commit record** seals a batch of block records; the whole
//     batch (data, entries, records) becomes durable with ONE clflush pass
//     and ONE sfence issued by the cache's commit path — that fence is the
//     batch's commit point;
//   * records validate by a 64-bit checksum mixing the record fields with
//     the record's monotonic index (which encodes its wrap lap), the stream
//     id, and the superblock's format epoch, so stale slots — earlier laps,
//     earlier lives of the device, a neighbouring stream — can never splice
//     into a recovery scan;
//   * instead of a fenced Tail publication, a lazily-persisted **commit
//     hint** (one 8 B superblock field per stream, stored without a flush at
//     batch publish and swept out by the *next* batch's flush pass) tells
//     recovery where to start scanning.  Everything below the durable hint
//     is fully durable and role-switched; recovery re-validates everything
//     above it.
//
// Format v3 (DESIGN.md §15) instantiates one RingBuffer per commit stream
// over an equal slice of the ring region; each stream owns a private hint
// line so concurrent streams share no metadata cache line.  The batch commit
// record carries a **commit tag** in w1: the low 32 bits are the cache's
// monotonic batch sequence (so recovery can identify THE newest batch across
// all streams — the only one whose fence may not have completed), the high
// 32 bits an optional cross-stream commit id anchoring the batch to a commit
// directory record (0 = plain self-committing batch).
//
// Head and Tail are DRAM-only monotonic indices here (head = next record to
// stage, tail = end of the newest published batch); nothing per-commit is
// fenced by this class at all.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>

#include "common/bytes.h"
#include "nvm/nvm_device.h"
#include "tinca/layout.h"

namespace tinca::core {

/// A decoded, validated ring record.
struct RingRecord {
  enum class Kind : std::uint8_t { kBlock = 1, kCommit = 2 };

  Kind kind = Kind::kBlock;
  std::uint64_t disk_blkno = 0;   ///< block records
  std::uint32_t curr_nvm = 0;     ///< block records: committed NVM block
  std::uint64_t payload_fp = 0;   ///< block: data fingerprint; commit: batch start
  std::uint64_t txn_count = 0;    ///< commit records: transactions in the batch
  std::uint64_t commit_tag = 0;   ///< commit records: seq | commit_id << 32

  /// Commit records store the monotonic index of the batch's first record.
  [[nodiscard]] std::uint64_t batch_start() const { return payload_fp; }

  /// Commit records: the cache-wide monotonic batch sequence number.
  [[nodiscard]] std::uint32_t commit_seq() const {
    return static_cast<std::uint32_t>(commit_tag);
  }

  /// Commit records: cross-stream commit id (0 = plain batch).
  [[nodiscard]] std::uint32_t commit_id() const {
    return static_cast<std::uint32_t>(commit_tag >> 32);
  }
};

/// Wrapper over one stream's slice of the NVM ring region and its
/// superblock hint line.  Stream 0 with a single-stream layout is exactly
/// the v2 ring.
class RingBuffer {
 public:
  RingBuffer(nvm::NvmDevice& nvm, const Layout& layout,
             std::uint32_t stream = 0)
      : nvm_(nvm), layout_(layout), stream_(stream) {
    TINCA_EXPECT(stream < layout.num_streams, "stream out of range");
  }

  RingBuffer(RingBuffer&& o) noexcept
      : nvm_(o.nvm_),
        layout_(o.layout_),
        stream_(o.stream_),
        head_(o.head_),
        tail_(o.tail_),
        durable_hint_(o.durable_hint_.load(std::memory_order_relaxed)),
        staged_hint_(o.staged_hint_),
        epoch_(o.epoch_) {}

  /// Initialize a fresh ring: hint = 0 persisted, epoch re-read (the caller
  /// formats the epoch field; this just resets the indices).
  void format();

  /// Mount path: load the durable commit hint and start head/tail from it.
  /// Recovery advances head/tail as it scans and calls set_indices() when
  /// done.
  void load();

  /// This ring's stream id.
  [[nodiscard]] std::uint32_t stream() const { return stream_; }

  /// Monotonic head index (next record to stage).
  [[nodiscard]] std::uint64_t head() const { return head_; }

  /// Monotonic tail index (end of the newest published batch).
  [[nodiscard]] std::uint64_t tail() const { return tail_; }

  /// Records staged but not yet published (the open batch).
  [[nodiscard]] std::uint64_t in_flight() const { return head_ - tail_; }

  /// Record capacity of THIS stream's ring slice.
  [[nodiscard]] std::uint64_t capacity() const {
    return layout_.stream_capacity;
  }

  /// The durable commit hint (start of recovery's scan window).  Atomic so
  /// commit-directory slot retirement can poll it without the owner lock.
  [[nodiscard]] std::uint64_t durable_hint() const {
    return durable_hint_.load(std::memory_order_relaxed);
  }

  /// Whether the hint line is behind tail (a persist_hint would make
  /// progress).
  [[nodiscard]] bool hint_dirty() const { return durable_hint() < tail_; }

  /// Whether `n` more records fit without overwriting the scan window
  /// [durable_hint, head).  When false the owner must hint_sync() first.
  [[nodiscard]] bool has_room(std::uint64_t n) const {
    return head_ + n - durable_hint() <= capacity();
  }

  /// Stage a block record at head (plain store, no flush).  Returns the
  /// stored byte range for the caller's batch flush pass.
  std::pair<std::uint64_t, std::uint64_t> stage_block(std::uint64_t disk_blkno,
                                                      std::uint32_t curr_nvm,
                                                      std::uint64_t data_fp);

  /// Stage the batch commit record sealing [batch_start, head) for
  /// `txn_count` merged transactions, tagged with `commit_tag`
  /// (seq | commit_id << 32).  Returns the stored byte range.
  std::pair<std::uint64_t, std::uint64_t> stage_commit(std::uint64_t batch_start,
                                                       std::uint64_t txn_count,
                                                       std::uint64_t commit_tag);

  /// Publish the staged batch: tail := head (DRAM) and stage the commit
  /// hint := batch start (8 B atomic store, no flush).  Returns the hint
  /// line's byte range, to be swept out by the NEXT batch's flush pass.
  std::pair<std::uint64_t, std::uint64_t> publish(std::uint64_t batch_start);

  /// The owner's flush pass covered the hint line staged by the previous
  /// publish() and fenced: the staged hint value is now the durable one.
  void note_staged_hint_durable();

  /// Durably persist hint := tail now (flush + fence).  Slow path: ring-full
  /// backpressure, eviction of a newest-batch block, recovery epilogue.
  void persist_hint();

  /// Abort/revoke path: retract head to the published tail (DRAM only —
  /// staged records above tail are garbage no scan can validate once they
  /// are superseded, and recovery discards unsealed runs anyway).
  void reset_head_to_tail() { head_ = tail_; }

  /// Recovery: force both indices (e.g. to the end of the validated scan).
  void set_indices(std::uint64_t head, std::uint64_t tail) {
    head_ = head;
    tail_ = tail;
  }

  /// Decode and validate the record at monotonic index `idx` against
  /// `format_epoch`; nullopt when the slot does not hold a valid record for
  /// exactly that index/lap/stream/epoch.
  [[nodiscard]] std::optional<RingRecord> scan(std::uint64_t idx,
                                               std::uint64_t format_epoch) const;

  /// The record checksum (exposed for verify_media and tests).
  static std::uint64_t checksum(std::uint64_t w0, std::uint64_t w1,
                                std::uint64_t w2, std::uint64_t idx,
                                std::uint64_t format_epoch,
                                std::uint32_t stream = 0);

 private:
  void stage_record(std::uint64_t w0, std::uint64_t w1, std::uint64_t w2);

  [[nodiscard]] std::uint64_t hint_off() const {
    return Layout::stream_hint_off(stream_);
  }

  nvm::NvmDevice& nvm_;
  const Layout& layout_;
  std::uint32_t stream_ = 0;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
  std::atomic<std::uint64_t> durable_hint_{0};
  std::uint64_t staged_hint_ = 0;  ///< hint value stored but not yet fenced
  std::uint64_t epoch_ = 0;        ///< cached superblock format epoch
};

}  // namespace tinca::core
