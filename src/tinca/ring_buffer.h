// Persistent ring buffer regulating transaction commits (paper §4.4).
//
// The ring replaces JBD2's descriptor and commit blocks: committing a block
// appends its on-disk block number (one 8 B atomic store + clflush + sfence)
// and advances the persistent Head pointer; the atomic publication of
// Tail := Head is the commit point of the whole transaction.  Head and Tail
// are monotonically increasing indices; the slot is index mod capacity.
#pragma once

#include <cstdint>

#include "nvm/nvm_device.h"
#include "tinca/layout.h"

namespace tinca::core {

/// Wrapper over the NVM ring region and the superblock Head/Tail fields.
class RingBuffer {
 public:
  RingBuffer(nvm::NvmDevice& nvm, const Layout& layout)
      : nvm_(nvm), layout_(layout) {}

  /// Initialize a fresh ring: Head = Tail = 0, persisted.
  void format();

  /// Reload Head/Tail from NVM (mount / recovery path).
  void load();

  /// Monotonic head index (next slot to fill).
  [[nodiscard]] std::uint64_t head() const { return head_; }

  /// Monotonic tail index (commit horizon).
  [[nodiscard]] std::uint64_t tail() const { return tail_; }

  /// Number of slots between tail and head (in-flight records).
  [[nodiscard]] std::uint64_t in_flight() const { return head_ - tail_; }

  /// Slot capacity.
  [[nodiscard]] std::uint64_t capacity() const { return layout_.ring_capacity; }

  /// Step 2 of the commit protocol: record `disk_blkno` at the Head slot
  /// (8 B atomic store, then clflush + sfence).  Does not move Head.
  void record(std::uint64_t disk_blkno);

  /// Step 3: advance Head by one, persisted.
  void advance_head();

  /// Step 5: publish Tail := Head, persisted.  This is the commit point.
  void publish_tail();

  /// Abort path: retract Head back to Tail, persisted.
  void reset_head_to_tail();

  /// Read the on-disk block number recorded at monotonic index `idx`
  /// (recovery scan).
  [[nodiscard]] std::uint64_t slot(std::uint64_t idx) const;

 private:
  void persist_field(std::uint64_t off, std::uint64_t value);

  nvm::NvmDevice& nvm_;
  const Layout& layout_;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
};

}  // namespace tinca::core
