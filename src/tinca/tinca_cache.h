// Tinca: the transactional NVM disk cache (paper §4).
//
// TincaCache is the self-contained cache manager the paper proposes.  It
// exports the transactional primitives of §4.1 (tinca_init_txn /
// tinca_commit / tinca_abort) to the layer above (a file system, a database,
// or a raw-block workload), caches 4 KB blocks in byte-addressable NVM, and
// guarantees crash consistency of both the cached data and its own metadata
// without ever writing a data block twice:
//
//   * write hits are **COW block writes** (§4.3): the new version goes to a
//     freshly allocated NVM block and the 16 B cache entry — holding both the
//     previous and the current NVM block number — is installed with one
//     atomic 16 B store + clflush + sfence;
//   * committing (§4.4, reworked for group commit — DESIGN.md §14) merges a
//     batch of transactions last-writer-wins, stages their COW installs and
//     self-validating ring records with plain stores, and makes the whole
//     batch durable with ONE clflush pass + ONE sfence — that fence is the
//     batch's commit point; role switches and the recovery hint are staged at
//     publish and swept out by the NEXT batch's flush pass (pipelining);
//   * recovery (§4.5) scans validated ring records upward from the durable
//     hint, rolls committed batches' lost role switches forward, revokes the
//     in-flight batch all-or-nothing, and rebuilds the DRAM index, LRU list
//     and free-block monitor from the entry table;
//   * replacement (§4.6) is LRU with one extra rule: blocks involved in the
//     committing transaction (log role — and therefore also their previous
//     versions) are never evicted; dirty victims are written back to disk.
//
// Deviations from the paper's text, both documented in DESIGN.md:
//   1. a revoked (rolled-back) entry is marked by prev == curr so that a
//      crash *during recovery* cannot mis-revoke twice;
//   2. recovery drops clean (unmodified) entries, because read-cache fills
//      are installed without flushes and their data is not guaranteed
//      durable; they are mere cache and re-fetchable from disk.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blockdev/block_device.h"
#include "cleaner/cleaner.h"
#include "common/histogram.h"
#include "nvm/nvm_device.h"
#include "obs/trace.h"
#include "tinca/cache_entry.h"
#include "tinca/layout.h"
#include "tinca/mvcc.h"
#include "tinca/ring_buffer.h"
#include "tinca/slot_lru.h"

namespace tinca::core {

/// Tunables for a TincaCache instance.
struct TincaConfig {
  /// Ring buffer bytes (paper default 1 MB, §5.1).  Must be 4 KB aligned.
  std::uint64_t ring_bytes = 1 << 20;
  /// Commit streams (DESIGN.md §15): the ring region is split into this many
  /// equal per-stream rings over the one shared entry table; batches are
  /// assigned to streams round-robin, and each stream has its own hint line,
  /// so commit metadata never contends across streams.  1 = the paper's
  /// single-ring layout.  Max Layout::kMaxStreams.
  std::uint32_t num_streams = 1;
  /// Whether read misses populate the cache (paper: Tinca caches for both
  /// write and read requests, §4.6).
  bool cache_reads = true;
  /// Cache mode: write-back (the paper's default, §5.1) keeps committed
  /// blocks dirty until replacement; write-through additionally writes them
  /// to disk at the end of every commit (durability on *two* devices at the
  /// cost of foreground disk writes).
  bool write_through = false;
  /// Extension (not in the paper): background cleaning threshold in percent
  /// of capacity.  When more than this fraction of cached blocks is dirty,
  /// commits trigger oldest-first write-back until the threshold is met —
  /// making later evictions cheap.  100 disables cleaning (paper behaviour).
  std::uint32_t clean_thresh_pct = 100;
  /// Wear-aware NVM data-block allocation: the free list becomes a FIFO
  /// rotation (freed blocks rejoin at the back) and is seeded least-worn
  /// first from NvmDevice::wear() at format/recovery, so hot disk blocks
  /// cycle over the whole data area instead of rewriting one region.  Off
  /// by default: the paper's prototype allocates LIFO, and rotation trades
  /// a little DRAM locality for media lifetime.
  bool wear_level = false;
  /// Modelled software overhead per cache operation (lookup, bookkeeping).
  std::uint64_t cpu_op_ns = 150;
  /// Chrome-trace thread-track id for this instance's trace spans (the
  /// sharded front-end assigns each shard its own track).
  int trace_tid = 0;
  /// Retry policy for disk I/O that fails transiently.  Permanent (bad
  /// sector) write failures additionally quarantine the block in NVM and
  /// force write-through degradation (DESIGN.md §9).
  blockdev::RetryPolicy io{};
  /// Background cleaner (DESIGN.md §11).  With mode != kDisabled, eviction
  /// of dirty victims, threshold cleaning and degraded write-through enqueue
  /// to the cleaner instead of writing to disk on the commit path;
  /// clean_thresh_pct is superseded by the cleaner's watermarks.
  cleaner::CleanerConfig cleaner{};
};

/// Runtime counters; everything the benches need to reproduce the paper's
/// per-operation metrics.
struct TincaCacheStats {
  std::uint64_t txns_committed = 0;
  std::uint64_t txns_aborted = 0;
  std::uint64_t blocks_committed = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t evictions = 0;
  /// Replacement-path disk writes only: eviction of a dirty victim,
  /// background cleaning, and explicit flush_dirty().  Foreground
  /// write-through traffic is counted separately (`writethrough_writes`) so
  /// the Fig 12 media accounting can tell replacement from commit traffic.
  std::uint64_t dirty_writebacks = 0;
  std::uint64_t writethrough_writes = 0;  ///< write-through commit disk writes
  std::uint64_t role_switches = 0;
  std::uint64_t cow_writes = 0;
  std::uint64_t background_cleanings = 0;  ///< threshold-triggered writebacks
  std::uint64_t revoked_blocks = 0;       ///< rolled back by recovery/abort
  std::uint64_t dropped_clean_entries = 0;  ///< clean entries shed at mount
  std::uint64_t recovered_entries = 0;    ///< entries kept by recovery
  std::uint64_t io_retries = 0;           ///< disk I/O retry attempts
  std::uint64_t io_quarantined = 0;       ///< blocks quarantined (bad sector)
  std::uint64_t io_degraded_writes = 0;   ///< forced write-through disk writes
  // Group commit (DESIGN.md §14).
  std::uint64_t commit_fences = 0;   ///< sfences issued by batch flush passes
  std::uint64_t commit_batches = 0;  ///< batches committed (>= 1 txn each)
  std::uint64_t hint_syncs = 0;      ///< forced durable-hint publications
  std::uint64_t group_merged_writes = 0;  ///< staged writes absorbed by
                                          ///< last-writer-wins batch merging
  // Multi-stream commit (DESIGN.md §15).
  std::uint64_t xstream_commits = 0;  ///< batches anchored to a cross-stream
                                      ///< commit-directory record
  Histogram blocks_per_txn;        ///< Fig 13 source data
  Histogram commit_batch_size;     ///< transactions per committed batch
};

/// A running transaction: blocks staged in DRAM (paper Fig 6a).
///
/// `add()` stages a whole-block update; staging the same block twice keeps
/// the latest contents.  The transaction is *running* until it is passed to
/// tinca_commit (which turns it into the committing transaction) or
/// tinca_abort.
class Transaction {
 public:
  /// Stage a 4 KB block update for `disk_blkno`.
  void add(std::uint64_t disk_blkno, std::span<const std::byte> data);

  /// Number of distinct blocks staged.
  [[nodiscard]] std::size_t block_count() const { return order_.size(); }

  /// Whether the transaction is still open (not committed/aborted).
  [[nodiscard]] bool open() const { return open_; }

  /// Transaction id (diagnostic only).
  [[nodiscard]] std::uint64_t id() const { return id_; }

 private:
  friend class TincaCache;
  explicit Transaction(std::uint64_t id) : id_(id) {}

  std::uint64_t id_;
  bool open_ = true;
  std::vector<std::uint64_t> order_;  ///< staging order, deduplicated
  std::unordered_map<std::uint64_t, std::vector<std::byte>> blocks_;
};

/// The transactional NVM disk cache.
class TincaCache : private cleaner::CleanerClient {
 public:
  /// Initialize a fresh cache on `nvm` (like mkfs): formats the superblock,
  /// ring and entry table.
  static std::unique_ptr<TincaCache> format(nvm::NvmDevice& nvm,
                                            blockdev::BlockDevice& disk,
                                            TincaConfig cfg = {});

  /// Mount an existing cache, running crash recovery (§4.5).  This is both
  /// the clean-restart and the after-crash path.  Anchored batches (staged
  /// by a cross-cache coordinator) are adjudicated against this cache's own
  /// commit directory; a multi-cache mount must instead use the three-phase
  /// API below so one directory adjudicates every participant.
  static std::unique_ptr<TincaCache> recover(nvm::NvmDevice& nvm,
                                             blockdev::BlockDevice& disk,
                                             TincaConfig cfg = {});

  // --- Coordinated recovery (DESIGN.md §15) --------------------------------
  //
  // The sharded front-end recovers its caches in three phases so a single
  // commit directory can adjudicate cross-cache transactions all-or-nothing:
  // mount every cache without mutating media, scan every ring, decide which
  // anchored commit ids survived on EVERY participant, then apply.

  /// An anchored batch (commit_id != 0 in its ring seal) found by the scan.
  struct AnchoredBatch {
    std::uint32_t commit_id = 0;
    /// Whether this is the cache's newest batch — the only one whose commit
    /// fence may not have completed, hence the only one needing `placed`.
    bool is_last = false;
    /// Whether every record of the batch survived whole (always true for a
    /// non-last batch: a successor batch proves its fence completed).
    bool placed = false;
  };
  struct RecoveryScan {
    std::vector<AnchoredBatch> anchored;
  };

  /// Phase 1: construct against existing media and load the entry table and
  /// ring state.  No media mutation.
  static std::unique_ptr<TincaCache> mount_for_recovery(
      nvm::NvmDevice& nvm, blockdev::BlockDevice& disk, TincaConfig cfg = {});

  /// Phase 2: scan every stream's ring from its durable hint, collecting
  /// sealed batches and trailing in-flight runs; reports the anchored
  /// batches the coordinator must adjudicate.  No media mutation.
  RecoveryScan recovery_scan();

  /// Phase 3: demote the newest batch unless it survives adjudication (a
  /// plain batch must be placed whole; an anchored batch must be in
  /// `effective_commits`), roll committed batches forward, revoke in-flight
  /// runs, and rebuild the DRAM state.  Ends with the epoch bump + ring
  /// formats that invalidate every scanned record.
  void recovery_apply(
      const std::unordered_set<std::uint32_t>& effective_commits);

  // --- Multi-stream commit phases (DESIGN.md §15) --------------------------
  //
  // tinca_commit / commit_group compose these internally (stage → flush →
  // one sfence → publish).  A cross-cache coordinator drives them directly:
  // it stages one batch per participating cache (each tagged with a shared
  // nonzero commit id), flushes them all, stages + flushes the commit
  // directory record, issues ONE sfence, then publishes every batch.  All
  // calls owner-locked, like tinca_commit.

  /// Stage a batch: merge `txns` last-writer-wins, install every block and
  /// seal the batch on the next round-robin stream, tagged with `commit_id`
  /// (0 = plain self-committing batch).  Returns false when the merge is
  /// empty (the transactions are closed; no batch is open).
  bool batch_stage(std::span<Transaction* const> txns, std::uint32_t commit_id);

  /// Flush the staged batch's dirtied ranges (and the previous batch's
  /// pending publish metadata).  NO fence — the caller's single sfence is
  /// the commit point.
  void batch_flush();

  /// After the commit fence: publish role switches, the stream's commit
  /// hint, and the MVCC versions (one epoch bump), then close the batch's
  /// transactions.
  void batch_publish();

  /// The coordinator issued the batch's single sfence on some participant's
  /// device; account it against this cache's commit-fence counter.
  void note_shared_fence() { ++stats_.commit_fences; }

  /// Stream the currently staged batch was sealed on.
  [[nodiscard]] std::uint32_t batch_stream() const { return batch_.stream; }

  /// Ring index one past the staged batch's seal record (commit-directory
  /// slot retirement waits for the stream's durable hint to pass this).
  [[nodiscard]] std::uint64_t batch_end() const { return batch_.end; }

  /// Commit streams of this cache.
  [[nodiscard]] std::uint32_t num_streams() const { return layout_.num_streams; }

  /// Per-stream ring introspection (tests, coordinator retirement polls —
  /// durable_hint() is safe to read without the owner lock).
  [[nodiscard]] const RingBuffer& stream_ring(std::uint32_t s) const {
    return rings_[s];
  }

  /// Durably sync every stream's commit hint now (flush + fence).  Public
  /// for the cross-shard coordinator: retiring a commit-directory slot
  /// needs the participants' durable hints past the anchored batches.
  /// Owner-locked, like tinca_commit.
  void sync_commit_hints() { hint_sync(); }

  // --- Transactional primitives (paper §4.1) -------------------------------

  /// Initiate a running transaction resident in DRAM.
  Transaction tinca_init_txn();

  /// Convert `txn` to the committing transaction and commit all its blocks
  /// into the NVM cache (§4.4).  On return the transaction is durable.
  /// Equivalent to a commit_group() of one.
  void tinca_commit(Transaction& txn);

  /// Group commit (DESIGN.md §14): commit several running transactions as
  /// ONE batch — their staged blocks are merged last-writer-wins (in span
  /// order), installed with staged (unflushed) stores, sealed by a single
  /// ring commit record, and made durable by ONE clflush pass + ONE sfence
  /// for the whole batch.  Role switches and the commit hint are published
  /// as staged stores swept out by the NEXT batch's flush pass (the
  /// pipelining).  The batch is atomic: a crash surfaces either every
  /// transaction in it or none.  On return every transaction is durable.
  void commit_group(std::span<Transaction* const> txns);

  /// Abort a *running* transaction: staged blocks are discarded; nothing has
  /// reached the cache.
  void tinca_abort(Transaction& txn);

  /// Durably sweep out the lazily-published commit metadata (the newest
  /// batch's staged role switches and the commit hint) with one fence.
  /// Commits are already durable without this — recovery replays the role
  /// switches from the ring — so it is purely a quiesce: after it returns,
  /// the media carries no staged commit state at all.
  void sync_metadata() { hint_sync(); }

  // --- Cached block I/O ----------------------------------------------------

  /// Read a 4 KB block through the cache (LRU updated, misses filled from
  /// disk and optionally cached).
  void read_block(std::uint64_t disk_blkno, std::span<std::byte> dst);

  /// Convenience: durably write one block as a single-block transaction.
  void write_block(std::uint64_t disk_blkno, std::span<const std::byte> data);

  /// Write every dirty cached block back to disk (blocks stay cached clean).
  void flush_dirty();

  // --- Snapshot reads (MVCC, DESIGN.md §12) --------------------------------

  /// Pin the current commit epoch for lock-free snapshot reads.  The pin is
  /// taken without the owner's mutex and MUST be released with
  /// snapshot_unpin().  A failed pin (pin.valid() == false) means the pin
  /// registry is full; callers fall back to the locked read path.
  [[nodiscard]] SnapshotPin snapshot_pin() { return mvcc_.pin(); }

  /// Release a pin from snapshot_pin().  Lock-free.
  void snapshot_unpin(const SnapshotPin& pin) { mvcc_.unpin(pin); }

  /// Read `disk_blkno` as of the pinned epoch, without taking any lock:
  /// resolve the block's version chain to the newest version <= pin.epoch
  /// and copy it out of NVM; blocks with no such version fall back to disk
  /// (whose content is guaranteed not to have advanced past the pin — see
  /// the writeback defer rule in DESIGN.md §12).  Thread-safe concurrently
  /// with the owner thread iff `disk` is (the sharded front-end wraps the
  /// shared disk in LockedBlockDevice).  Does not touch the LRU, the stats
  /// block or the simulated clock.  Throws IoError on an unrecoverable
  /// disk read.
  void snapshot_read(const SnapshotPin& pin, std::uint64_t disk_blkno,
                     std::span<std::byte> dst) const;

  /// Chain-only variant of snapshot_read: returns false instead of falling
  /// back to disk.  This is the sharded front-end's lock-free read fast
  /// path — a false return sends the caller to the locked read path, which
  /// fills the cache and updates the LRU as usual.
  [[nodiscard]] bool snapshot_try_read(const SnapshotPin& pin,
                                       std::uint64_t disk_blkno,
                                       std::span<std::byte> dst) const;

  /// The MVCC version-chain table (test/bench hook).
  [[nodiscard]] const MvccTable& mvcc() const { return mvcc_; }

  /// One epoch-based reclamation pass: trims version-chain suffixes no pin
  /// can reach and returns their NVM blocks to the free pool.  Called
  /// automatically from commits, cleaner_step() and eviction pressure; the
  /// explicit hook exists for tests.  Owner thread only.
  void mvcc_reclaim();

  // --- Background cleaner (DESIGN.md §11) ----------------------------------

  /// One cleaner pacing quantum (stepped mode).  Also runs an MVCC
  /// reclamation pass (the quantum is the natural amortization point).
  /// No-op when no cleaner is configured, so harness loops can call it
  /// unconditionally.
  void cleaner_step() {
    mvcc_reclaim();
    if (cleaner_) cleaner_->step();
  }

  /// The cleaner instance, or nullptr when mode is kDisabled.
  [[nodiscard]] cleaner::Cleaner* cleaner() { return cleaner_.get(); }
  [[nodiscard]] const cleaner::Cleaner* cleaner() const {
    return cleaner_.get();
  }

  // --- Introspection -------------------------------------------------------

  /// Whether `disk_blkno` is currently cached.
  [[nodiscard]] bool cached(std::uint64_t disk_blkno) const;

  /// Whether `disk_blkno` is cached and dirty.
  [[nodiscard]] bool dirty(std::uint64_t disk_blkno) const;

  /// The persistent entry for a cached block (test hook).
  [[nodiscard]] CacheEntry entry_for(std::uint64_t disk_blkno) const;

  /// Data-block capacity of the cache.
  [[nodiscard]] std::uint64_t capacity_blocks() const { return layout_.num_blocks; }

  /// Number of valid cached blocks.
  [[nodiscard]] std::uint64_t cached_blocks() const { return index_.size(); }

  /// Number of free NVM data blocks.
  [[nodiscard]] std::uint64_t free_blocks() const { return free_blocks_.count(); }

  /// Number of cached blocks that are dirty (maintained incrementally; the
  /// old full-index scan per commit was O(capacity) — see clean_to_threshold).
  [[nodiscard]] std::uint64_t dirty_blocks() const { return dirty_count_; }

  /// Largest transaction (in blocks) this cache can commit.
  [[nodiscard]] std::uint64_t max_txn_blocks() const;

  /// Disk blocks currently quarantined after a permanent write failure
  /// (their newest data is pinned dirty in NVM; DESIGN.md §9).
  [[nodiscard]] std::uint64_t quarantined_blocks() const {
    return quarantine_.size();
  }

  /// Whether a permanent disk fault forced write-through degradation.
  [[nodiscard]] bool degraded() const { return degraded_; }

  [[nodiscard]] const TincaCacheStats& stats() const { return stats_; }
  [[nodiscard]] const Layout& layout() const { return layout_; }
  [[nodiscard]] nvm::NvmDevice& nvm() { return nvm_; }
  [[nodiscard]] blockdev::BlockDevice& disk() { return disk_; }

  // --- Observability (src/obs/) --------------------------------------------

  /// Per-op trace spans: tinca.commit / tinca.cow_write / tinca.ring_append /
  /// tinca.role_switch / tinca.evict / tinca.writeback / tinca.recovery /
  /// tinca.read / tinca.abort / tinca.io_retry (one span per disk retry,
  /// covering its backoff wait).  Disabled by default (one branch per span);
  /// enable() for latency histograms, attach_sink() for Chrome traces.
  [[nodiscard]] obs::Tracer& tracer() { return trace_; }
  [[nodiscard]] const obs::Tracer& tracer() const { return trace_; }

  /// Enable/disable span recording for this cache *and* its cleaner.
  void enable_tracing(bool on = true) {
    trace_.enable(on);
    if (cleaner_) cleaner_->tracer().enable(on);
  }

  /// Attach a Chrome-trace sink to this cache *and* its cleaner.
  void attach_trace_sink(obs::TraceSink* sink) {
    trace_.attach_sink(sink);
    if (cleaner_) cleaner_->tracer().attach_sink(sink);
  }

  /// Register every stats counter, the capacity/occupancy gauges and the
  /// span histograms into `reg` under `prefix` (e.g. "tinca.").  The
  /// registry must not outlive this cache.
  void register_metrics(obs::MetricsRegistry& reg,
                        const std::string& prefix) const;

 private:
  TincaCache(nvm::NvmDevice& nvm, blockdev::BlockDevice& disk, TincaConfig cfg);

  void format_media();
  /// Recovery phase 1 body: identity checks + ring/table load, no mutation.
  void load_for_recovery();
  /// Seed the free-block pool least-worn first (no-op unless wear_level).
  void order_free_blocks_by_wear();

  // Recovery scratch carried from recovery_scan() to recovery_apply().
  struct RecoveredBatch {
    std::vector<RingRecord> records;
    std::uint32_t seq = 0;
    std::uint32_t commit_id = 0;
    std::uint32_t stream = 0;
  };
  struct RecoveryState {
    std::vector<RecoveredBatch> batches;          ///< sealed, all streams
    std::vector<std::vector<RingRecord>> runs;    ///< per-stream in-flight
    int last = -1;          ///< index of the max-seq (newest) batch
    bool last_placed = false;
  };
  [[nodiscard]] std::uint64_t block_fp(std::uint32_t nvm_block) const;
  [[nodiscard]] bool record_placed(const RingRecord& r) const;

  // Commit-protocol stages (DESIGN.md §14).  stage_block_install stages one
  // merged block's COW/miss install (unflushed stores, ranges collected into
  // flush_ranges_); publish_switches stages the batch's role switches into
  // pending_ranges_ (swept out by the NEXT batch's flush pass).
  void stage_block_install(std::uint64_t disk_blkno,
                           std::span<const std::byte> data);
  void publish_switches(const std::vector<std::uint64_t>& blocks);
  // Close a transaction whose blocks just committed (stats + reset).
  void close_committed(Transaction& t);
  // Flush pending_ranges_ (the newest batch's role switches + hint line) and
  // durably publish hint := tail, so recovery never re-validates that batch.
  // Forced by ring-full backpressure and by eviction of a newest-batch block.
  void hint_sync();

  // Entry plumbing.  The _staged variants store without flushing and append
  // the dirtied byte range to `ranges` for a later batch flush pass.
  void write_entry(std::uint32_t slot, const CacheEntry& e);
  void write_entry_staged(std::uint32_t slot, const CacheEntry& e,
                          std::vector<std::pair<std::uint64_t, std::uint64_t>>& ranges);
  void invalidate_entry(std::uint32_t slot);
  [[nodiscard]] CacheEntry read_entry_from_nvm(std::uint32_t slot) const;
  void write_data_block(std::uint32_t nvm_block, std::span<const std::byte> data);
  void write_data_block_staged(std::uint32_t nvm_block,
                               std::span<const std::byte> data);

  // Replacement.  evict_one scans from `scan_from` (SlotLru::kNil → the LRU
  // end) and returns the slot to resume scanning from, so that one
  // ensure_free pass visits each skipped victim at most once (O(n) total
  // instead of O(n²) rescans from the tail).
  void ensure_free(std::uint32_t entries, std::uint32_t blocks);
  std::uint32_t evict_one(std::uint32_t scan_from);
  bool writeback(std::uint32_t slot);
  void clean_to_threshold();

  // CleanerClient (the cleaner retires dirty blocks through these).
  cleaner::CleanOutcome cleaner_clean(std::uint64_t key,
                                      std::uint64_t* io_retries) override;
  [[nodiscard]] std::uint64_t cleaner_dirty_blocks() const override;
  [[nodiscard]] std::uint64_t cleaner_capacity_blocks() const override;
  void cleaner_collect(std::uint32_t max,
                       std::vector<std::uint64_t>& out) override;

  // Disk I/O with the retry/quarantine policy (DESIGN.md §9).  The 3-arg
  // overload charges retry waits to `retry_counter` (foreground commits use
  // stats_.io_retries; the cleaner passes its own counter).
  blockdev::IoStatus disk_write(std::uint64_t blkno,
                                std::span<const std::byte> buf);
  blockdev::IoStatus disk_write(std::uint64_t blkno,
                                std::span<const std::byte> buf,
                                std::uint64_t* retry_counter);
  blockdev::IoStatus disk_read(std::uint64_t blkno, std::span<std::byte> dst);
  void note_bad_block(std::uint64_t blkno);

  // Debug-build cross-check of the incremental dirty counter against a full
  // index scan (compiled out under NDEBUG).
  void assert_dirty_count() const;

  // Recovery helpers.
  void revoke_slot(std::uint32_t slot);

  // MVCC helpers (DESIGN.md §12).
  // Publish `nvm_block` as the version of `disk_blkno` for the *next* epoch
  // and track the chain's 1→2 transition for reclamation.
  void mvcc_publish(std::uint64_t disk_blkno, std::uint32_t nvm_block);
  // Ensure the block's *current* committed bytes are reachable through a
  // chain before a COW overwrites the entry: clean fills and recovery
  // survivors have no chain yet, so their NVM block is published as an
  // epoch-1 baseline version (the chain takes ownership of the block).
  void mvcc_baseline(std::uint64_t disk_blkno, std::uint32_t nvm_block);
  // Whether writing this block's newest version to disk could rob a pinned
  // reader of the only copy of the version it needs (no chain rec <= its
  // pin).  Writebacks and cleaning defer while this is true.
  [[nodiscard]] bool mvcc_defer_disk_write(std::uint64_t disk_blkno) const;

  nvm::NvmDevice& nvm_;
  blockdev::BlockDevice& disk_;
  TincaConfig cfg_;
  Layout layout_;
  std::vector<RingBuffer> rings_;  ///< one per commit stream (§15)

  std::vector<CacheEntry> mirror_;                       ///< DRAM copy of entries
  std::unordered_map<std::uint64_t, std::uint32_t> index_;  ///< disk blk → slot
  SlotLru lru_;
  FreeMonitor free_entries_;
  FreeMonitor free_blocks_;

  std::uint64_t next_txn_id_ = 1;
  std::uint64_t dirty_count_ = 0;  ///< valid+modified entries (incremental)
  std::uint64_t format_epoch_ = 0;  ///< cached superblock format epoch

  // Multi-stream commit state (DESIGN.md §15).
  std::uint32_t next_stream_ = 0;  ///< round-robin batch → stream assignment
  /// Cache-wide monotonic batch sequence, carried in every seal's commit
  /// tag: recovery uses it to identify THE newest batch across all streams —
  /// the only one whose fence may not have completed.  DRAM; restarts at 1
  /// per mount (the epoch bump retires all earlier records).
  std::uint32_t batch_seq_ = 1;
  /// The staged-but-unpublished batch (at most one per cache: the owner
  /// mutex serializes commits).
  struct OpenBatch {
    bool active = false;
    std::uint32_t stream = 0;
    std::uint32_t commit_id = 0;
    std::uint64_t start = 0;  ///< ring index of the batch's first record
    std::uint64_t end = 0;    ///< ring index one past the seal record
    std::vector<std::uint64_t> order;    ///< merged block order
    std::vector<Transaction*> txns;      ///< closed at publish
  };
  OpenBatch batch_;
  std::unique_ptr<RecoveryState> recovery_;  ///< scan → apply scratch

  // Group-commit pipeline state (DESIGN.md §14).
  /// Byte ranges dirtied by the OPEN batch (staged data, entries, ring
  /// records); flushed and cleared by its own flush pass.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> flush_ranges_;
  /// Byte ranges staged at the last publish (role-switched entries + the
  /// commit hint line); swept out by the NEXT batch's flush pass or by
  /// hint_sync().
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pending_ranges_;
  /// Disk blocks of the newest published batch.  Evicting or invalidating
  /// one of these before the durable hint has moved past the batch would let
  /// recovery demote an acked batch, so eviction hint_sync()s first.
  std::unordered_set<std::uint64_t> last_batch_blocks_;
  /// Disk blocks with permanent write failures; their data stays pinned
  /// dirty in NVM.  DRAM-only: quarantined blocks remain dirty, recovery
  /// keeps dirty entries, and the next writeback attempt re-discovers the
  /// fault, so nothing is lost by forgetting the set across a crash.
  std::unordered_set<std::uint64_t> quarantine_;
  bool degraded_ = false;  ///< permanent fault seen → forced write-through
  TincaCacheStats stats_;

  /// Per-block version chains + commit epoch + pin registry (DRAM-only;
  /// rebuilt from the entry table at mount like the index and LRU).
  MvccTable mvcc_;
  std::vector<std::uint32_t> mvcc_freed_;  ///< reclaim scratch buffer

  obs::Tracer trace_;  ///< virtual-time tracer (nvm_'s clock)
  obs::Tracer::Site* ts_commit_;
  obs::Tracer::Site* ts_abort_;
  obs::Tracer::Site* ts_cow_;
  obs::Tracer::Site* ts_ring_;
  obs::Tracer::Site* ts_role_switch_;
  obs::Tracer::Site* ts_evict_;
  obs::Tracer::Site* ts_writeback_;
  obs::Tracer::Site* ts_recovery_;
  obs::Tracer::Site* ts_read_;
  obs::Tracer::Site* ts_io_retry_;
  // Pipeline-stage spans (DESIGN.md §14): append / flush / publish phases of
  // commit_group, so traces show how much of a batch overlaps its successor.
  obs::Tracer::Site* ts_batch_append_;
  obs::Tracer::Site* ts_batch_flush_;
  obs::Tracer::Site* ts_batch_publish_;

  /// Background cleaner (DESIGN.md §11); null when cfg_.cleaner.mode is
  /// kDisabled.  Declared last: it references this cache as its client, so
  /// it must be destroyed first.
  std::unique_ptr<cleaner::Cleaner> cleaner_;
};

}  // namespace tinca::core
