// DRAM-resident LRU list over entry slots (paper §4.6).
//
// Tinca keeps its replacement bookkeeping in DRAM — a hash table plus an LRU
// linked list — because these structures can be rebuilt from the persistent
// entry table on startup (§4.6).  This is the linked-list half: an intrusive
// doubly-linked list over dense slot ids, O(1) for touch / insert / remove
// with no per-node allocation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/expect.h"

namespace tinca::core {

/// Intrusive LRU over slot ids in [0, n).
class SlotLru {
 public:
  static constexpr std::uint32_t kNil = 0xFFFF'FFFFu;

  explicit SlotLru(std::uint32_t n) : prev_(n, kNil), next_(n, kNil), in_(n, 0) {}

  /// Insert `slot` at the MRU end.  Must not already be present.
  void push_mru(std::uint32_t slot) {
    TINCA_EXPECT(!in_[slot], "slot already in LRU");
    in_[slot] = 1;
    prev_[slot] = kNil;
    next_[slot] = mru_;
    if (mru_ != kNil) prev_[mru_] = slot;
    mru_ = slot;
    if (lru_ == kNil) lru_ = slot;
    ++size_;
  }

  /// Remove `slot` from the list.  Must be present.
  void remove(std::uint32_t slot) {
    TINCA_EXPECT(in_[slot], "slot not in LRU");
    in_[slot] = 0;
    const std::uint32_t p = prev_[slot];
    const std::uint32_t n = next_[slot];
    if (p != kNil) next_[p] = n; else mru_ = n;
    if (n != kNil) prev_[n] = p; else lru_ = p;
    --size_;
  }

  /// Move `slot` to the MRU end (access hit).
  void touch(std::uint32_t slot) {
    remove(slot);
    push_mru(slot);
  }

  /// Least-recently-used slot, or kNil if empty.
  [[nodiscard]] std::uint32_t lru() const { return lru_; }

  /// Next-less-recently-used neighbour moving from LRU toward MRU (i.e. the
  /// element accessed *after* `slot`), or kNil.
  [[nodiscard]] std::uint32_t newer(std::uint32_t slot) const {
    TINCA_EXPECT(in_[slot], "slot not in LRU");
    return prev_[slot];
  }

  /// Whether `slot` is in the list.
  [[nodiscard]] bool contains(std::uint32_t slot) const { return in_[slot] != 0; }

  /// Number of listed slots.
  [[nodiscard]] std::uint32_t size() const { return size_; }

 private:
  std::vector<std::uint32_t> prev_, next_;
  std::vector<std::uint8_t> in_;
  std::uint32_t mru_ = kNil;
  std::uint32_t lru_ = kNil;
  std::uint32_t size_ = 0;
};

/// Free-block monitor (paper §4.6): traces NVM blocks / entry slots that are
/// not in use.  Rebuilt from the entry table on startup; never persisted.
///
/// An in-pool bitmap makes double-give (which would hand the same NVM block
/// to two owners and corrupt the cache silently, possibly much later) and
/// out-of-range ids fail fast at the faulty call site.  One byte per id and
/// O(1) per operation, so it is kept on in all build types.
class FreeMonitor {
 public:
  /// With `rotate` false (default) the pool is a LIFO stack: a just-freed
  /// id is reused immediately (compact layouts, predictable tests).  With
  /// `rotate` true it is a FIFO queue: freed ids go to the back and the
  /// longest-free id is handed out next, so a hot disk block cycles over
  /// the whole NVM data area instead of burning one region — the paper's
  /// lifetime concern (PCM/ReRAM endure 10^6–10^8 writes per cell).
  explicit FreeMonitor(std::uint32_t n, bool rotate = false)
      : in_pool_(n, 1), rotate_(rotate) {
    // Hand out low ids first: keeps layouts compact and tests predictable.
    for (std::uint32_t i = n; i-- > 0;) free_.push_back(i);
  }

  /// True if at least one id is free.
  [[nodiscard]] bool any() const { return !free_.empty(); }

  /// Number of free ids.
  [[nodiscard]] std::uint32_t count() const {
    return static_cast<std::uint32_t>(free_.size());
  }

  /// Take a free id.  Requires any().
  std::uint32_t take() {
    TINCA_EXPECT(!free_.empty(), "allocation from empty free monitor");
    const std::uint32_t id = rotate_ ? free_.front() : free_.back();
    if (rotate_)
      free_.pop_front();
    else
      free_.pop_back();
    TINCA_ENSURE(in_pool_[id], "free monitor pool lost track of an id");
    in_pool_[id] = 0;
    return id;
  }

  /// Reorder the pool so the least-worn id is handed out first (`wear_of`
  /// maps an id to its media-write count).  Called at format/recovery time
  /// when wear levelling is on: the runtime rotation keeps the order fair
  /// from there, this seeds it from the media's actual history.
  void order_by_wear(const std::function<std::uint64_t(std::uint32_t)>& wear_of) {
    std::stable_sort(free_.begin(), free_.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return rotate_ ? wear_of(a) < wear_of(b)
                                      : wear_of(a) > wear_of(b);
                     });
  }

  /// Return an id to the pool.  The id must be absent (no double-give).
  void give(std::uint32_t id) {
    TINCA_EXPECT(id < in_pool_.size(), "give of an out-of-range id");
    TINCA_EXPECT(!in_pool_[id], "double give of an id to the free monitor");
    in_pool_[id] = 1;
    free_.push_back(id);
  }

  /// Whether `id` is currently in the pool (free).
  [[nodiscard]] bool holds(std::uint32_t id) const {
    TINCA_EXPECT(id < in_pool_.size(), "holds of an out-of-range id");
    return in_pool_[id] != 0;
  }

  /// Empty the pool (recovery rebuild starts from scratch).
  void clear() {
    free_.clear();
    std::fill(in_pool_.begin(), in_pool_.end(), 0);
  }

 private:
  std::deque<std::uint32_t> free_;
  std::vector<std::uint8_t> in_pool_;  ///< 1 iff the id is currently free
  bool rotate_ = false;                ///< FIFO reuse (wear levelling)
};

}  // namespace tinca::core
