// Tinca's NVM space layout (paper Fig 5, extended for group commit and
// multi-stream commit — DESIGN.md §14/§15).
//
//   [ superblock | per-stream rings | cache entry table | data blocks ... ]
//
// The superblock keeps the format identity, a monotonic **format epoch**
// (bumped at every format *and* every recovery so ring records from an
// earlier life can never validate again), one lazily-persisted **commit
// hint** per stream — a monotonic ring index below which everything on that
// stream is known fully durable and role-switched — and the **commit
// directory** (DESIGN.md §15): 32 cache-line-sized slots holding atomic
// cross-stream commit records, each naming the set of streams a multi-shard
// transaction spans.  Format v3 splits v2's single record ring into
// `num_streams` equal per-stream rings over the ONE shared entry table:
// every stream appends 32 B self-validating records (block records + batch
// commit records) to its own ring with its own hint line, so concurrent
// commit streams share no metadata cache line.  The commit point of a batch
// is still the single fence of its flush pass.  The entry table holds one
// 16 B entry per data block; the rest of the device is 4 KB cached data
// blocks.
#pragma once

#include <cstdint>

#include "common/expect.h"

namespace tinca::core {

/// Cached block size (§4.2: the data area is managed in 4 KB units).
constexpr std::uint64_t kBlockSize = 4096;

/// Computed byte offsets for every region of the NVM device.
struct Layout {
  static constexpr std::uint64_t kMagic = 0x54494E43'41434845ULL;  // "TINCACHE"
  static constexpr std::uint64_t kVersion = 3;

  /// Bytes per ring record (one block record or one batch commit record).
  static constexpr std::uint64_t kRingSlotBytes = 32;

  /// Upper bound on commit streams per cache: the per-stream hint lines must
  /// fit between offset 64 and the commit directory at 2048.
  static constexpr std::uint32_t kMaxStreams = 16;

  // Superblock field offsets (each identity field is 8 B; every commit hint
  // gets a private cache line so flushing one never drags another along).
  static constexpr std::uint64_t kMagicOff = 0;
  static constexpr std::uint64_t kVersionOff = 8;
  static constexpr std::uint64_t kNumBlocksOff = 16;
  static constexpr std::uint64_t kRingCapacityOff = 24;
  static constexpr std::uint64_t kFormatEpochOff = 32;
  static constexpr std::uint64_t kNumStreamsOff = 40;
  /// Stream 0's commit hint (v2's single hint field kept this offset).
  static constexpr std::uint64_t kCommitHintOff = 64;
  static constexpr std::uint64_t kSuperblockBytes = kBlockSize;

  /// Commit directory (DESIGN.md §15): 32 slots of one cache line each in
  /// the superblock's second half.  A slot holds one atomic cross-stream
  /// commit record; a 64 B store never spans two lines, so a crash keeps
  /// either the whole old record or the whole new one.
  static constexpr std::uint64_t kDirOff = 2048;
  static constexpr std::uint64_t kDirSlots = 32;
  static constexpr std::uint64_t kDirSlotBytes = 64;

  /// Byte offset of stream `s`'s commit-hint line.
  static constexpr std::uint64_t stream_hint_off(std::uint32_t s) {
    return kCommitHintOff + static_cast<std::uint64_t>(s) * 64;
  }

  /// Byte offset of commit-directory slot `i`.
  static constexpr std::uint64_t dir_slot_off(std::uint64_t i) {
    return kDirOff + i * kDirSlotBytes;
  }

  std::uint64_t ring_off = 0;        ///< byte offset of the ring region
  std::uint64_t ring_capacity = 0;   ///< TOTAL 32 B ring records, all streams
  std::uint32_t num_streams = 1;     ///< per-stream rings over the ring region
  std::uint64_t stream_capacity = 0; ///< records per stream ring
  std::uint64_t entry_table_off = 0; ///< byte offset of the entry table
  std::uint64_t num_blocks = 0;      ///< data blocks == entry slots
  std::uint64_t data_off = 0;        ///< byte offset of the data area
  std::uint64_t total_bytes = 0;     ///< device size this layout was built for

  /// Compute a layout for a device of `device_bytes` with a ring region of
  /// `ring_bytes` (both multiples of 4 KB) split into `num_streams` equal
  /// per-stream rings.  Requires room for at least 8 data blocks.
  static Layout compute(std::uint64_t device_bytes, std::uint64_t ring_bytes,
                        std::uint32_t num_streams = 1) {
    TINCA_EXPECT(device_bytes % kBlockSize == 0, "device size not 4 KB aligned");
    TINCA_EXPECT(ring_bytes % kBlockSize == 0 && ring_bytes > 0,
                 "ring size not 4 KB aligned");
    TINCA_EXPECT(num_streams >= 1 && num_streams <= kMaxStreams,
                 "stream count out of range");
    Layout l;
    l.total_bytes = device_bytes;
    l.ring_off = kSuperblockBytes;
    l.ring_capacity = ring_bytes / kRingSlotBytes;
    l.num_streams = num_streams;
    l.stream_capacity = l.ring_capacity / num_streams;
    TINCA_EXPECT(l.stream_capacity >= 4,
                 "ring too small for this many streams");
    l.entry_table_off = l.ring_off + ring_bytes;

    const std::uint64_t remaining = device_bytes - l.entry_table_off;
    // Each data block costs 4 KB of data + 16 B of entry (+ table padding).
    std::uint64_t n = remaining / (kBlockSize + 16);
    // Shrink until the 4 KB-aligned entry table plus data fits.
    while (n > 0) {
      const std::uint64_t table_bytes = round_up(n * 16, kBlockSize);
      if (l.entry_table_off + table_bytes + n * kBlockSize <= device_bytes) break;
      --n;
    }
    TINCA_EXPECT(n >= 8, "NVM device too small for a usable cache");
    l.num_blocks = n;
    l.data_off = l.entry_table_off + round_up(n * 16, kBlockSize);
    return l;
  }

  /// Byte offset of entry slot `i`.
  [[nodiscard]] std::uint64_t entry_off(std::uint64_t i) const {
    TINCA_EXPECT(i < num_blocks, "entry slot out of range");
    return entry_table_off + i * 16;
  }

  /// Byte offset of data block `i`.
  [[nodiscard]] std::uint64_t data_block_off(std::uint64_t i) const {
    TINCA_EXPECT(i < num_blocks, "data block out of range");
    return data_off + i * kBlockSize;
  }

  /// Byte offset of stream `s`'s ring record for (monotonic) index `idx`.
  [[nodiscard]] std::uint64_t ring_slot_off(std::uint32_t stream,
                                            std::uint64_t idx) const {
    TINCA_EXPECT(stream < num_streams, "stream out of range");
    return ring_off + (static_cast<std::uint64_t>(stream) * stream_capacity +
                       idx % stream_capacity) *
                          kRingSlotBytes;
  }

  /// Stream-0 shorthand (the single-stream common case).
  [[nodiscard]] std::uint64_t ring_slot_off(std::uint64_t idx) const {
    return ring_slot_off(0, idx);
  }

 private:
  static std::uint64_t round_up(std::uint64_t v, std::uint64_t align) {
    return (v + align - 1) / align * align;
  }
};

}  // namespace tinca::core
