// Tinca's NVM space layout (paper Fig 5, extended for group commit).
//
//   [ superblock | ring buffer | cache entry table | data blocks ... ]
//
// The superblock keeps the format identity, a monotonic **format epoch**
// (bumped at every format *and* every recovery so ring records from an
// earlier life can never validate again), and the lazily-persisted **commit
// hint** — a monotonic ring index below which everything is known fully
// durable and role-switched.  Format v2 replaces v1's persistent Head/Tail
// pointers: the ring is a contiguous array of 32 B self-validating records
// (block records + batch commit records, DESIGN.md §14) and the commit
// point of a batch is the single fence of its flush pass, not a pointer
// publication.  The entry table holds one 16 B entry per data block; the
// rest of the device is 4 KB cached data blocks.
#pragma once

#include <cstdint>

#include "common/expect.h"

namespace tinca::core {

/// Cached block size (§4.2: the data area is managed in 4 KB units).
constexpr std::uint64_t kBlockSize = 4096;

/// Computed byte offsets for every region of the NVM device.
struct Layout {
  static constexpr std::uint64_t kMagic = 0x54494E43'41434845ULL;  // "TINCACHE"
  static constexpr std::uint64_t kVersion = 2;

  /// Bytes per ring record (one block record or one batch commit record).
  static constexpr std::uint64_t kRingSlotBytes = 32;

  // Superblock field offsets (each field is 8 B; the commit hint gets a
  // private cache line so flushing it never drags identity fields along).
  static constexpr std::uint64_t kMagicOff = 0;
  static constexpr std::uint64_t kVersionOff = 8;
  static constexpr std::uint64_t kNumBlocksOff = 16;
  static constexpr std::uint64_t kRingCapacityOff = 24;
  static constexpr std::uint64_t kFormatEpochOff = 32;
  static constexpr std::uint64_t kCommitHintOff = 64;
  static constexpr std::uint64_t kSuperblockBytes = kBlockSize;

  std::uint64_t ring_off = 0;        ///< byte offset of the ring buffer
  std::uint64_t ring_capacity = 0;   ///< number of 32 B ring records
  std::uint64_t entry_table_off = 0; ///< byte offset of the entry table
  std::uint64_t num_blocks = 0;      ///< data blocks == entry slots
  std::uint64_t data_off = 0;        ///< byte offset of the data area
  std::uint64_t total_bytes = 0;     ///< device size this layout was built for

  /// Compute a layout for a device of `device_bytes` with a ring buffer of
  /// `ring_bytes` (both multiples of 4 KB).  Requires room for at least 8
  /// data blocks.
  static Layout compute(std::uint64_t device_bytes, std::uint64_t ring_bytes) {
    TINCA_EXPECT(device_bytes % kBlockSize == 0, "device size not 4 KB aligned");
    TINCA_EXPECT(ring_bytes % kBlockSize == 0 && ring_bytes > 0,
                 "ring size not 4 KB aligned");
    Layout l;
    l.total_bytes = device_bytes;
    l.ring_off = kSuperblockBytes;
    l.ring_capacity = ring_bytes / kRingSlotBytes;
    l.entry_table_off = l.ring_off + ring_bytes;

    const std::uint64_t remaining = device_bytes - l.entry_table_off;
    // Each data block costs 4 KB of data + 16 B of entry (+ table padding).
    std::uint64_t n = remaining / (kBlockSize + 16);
    // Shrink until the 4 KB-aligned entry table plus data fits.
    while (n > 0) {
      const std::uint64_t table_bytes = round_up(n * 16, kBlockSize);
      if (l.entry_table_off + table_bytes + n * kBlockSize <= device_bytes) break;
      --n;
    }
    TINCA_EXPECT(n >= 8, "NVM device too small for a usable cache");
    l.num_blocks = n;
    l.data_off = l.entry_table_off + round_up(n * 16, kBlockSize);
    return l;
  }

  /// Byte offset of entry slot `i`.
  [[nodiscard]] std::uint64_t entry_off(std::uint64_t i) const {
    TINCA_EXPECT(i < num_blocks, "entry slot out of range");
    return entry_table_off + i * 16;
  }

  /// Byte offset of data block `i`.
  [[nodiscard]] std::uint64_t data_block_off(std::uint64_t i) const {
    TINCA_EXPECT(i < num_blocks, "data block out of range");
    return data_off + i * kBlockSize;
  }

  /// Byte offset of the ring record for (monotonic) index `idx`.
  [[nodiscard]] std::uint64_t ring_slot_off(std::uint64_t idx) const {
    return ring_off + (idx % ring_capacity) * kRingSlotBytes;
  }

 private:
  static std::uint64_t round_up(std::uint64_t v, std::uint64_t align) {
    return (v + align - 1) / align * align;
  }
};

}  // namespace tinca::core
