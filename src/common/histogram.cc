#include "common/histogram.h"

#include <bit>
#include <sstream>

namespace tinca {

Histogram::Histogram() : buckets_(kBuckets, 0) {}

void Histogram::record(std::uint64_t value) {
  const int b = value == 0 ? 0 : std::bit_width(value) - 1;
  buckets_[static_cast<std::size_t>(b)]++;
  count_++;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen > target) {
      // Upper bound of bucket i, clamped to the true max.
      const std::uint64_t hi =
          i >= 63 ? UINT64_MAX : ((std::uint64_t{1} << (i + 1)) - 1);
      return hi < max_ ? hi : max_;
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i)
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

void Histogram::clear() {
  buckets_.assign(kBuckets, 0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

std::string Histogram::summary() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " p50=" << quantile(0.50)
     << " p95=" << quantile(0.95) << " p99=" << quantile(0.99)
     << " max=" << max();
  return os.str();
}

}  // namespace tinca
