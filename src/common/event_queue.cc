#include "common/event_queue.h"

#include <utility>

#include "common/expect.h"

namespace tinca::sim {

void EventQueue::schedule_at(Ns when, Callback cb) {
  TINCA_EXPECT(when >= now_, "scheduling into the past");
  heap_.push(Event{when, next_seq_++, std::move(cb)});
}

Ns EventQueue::run() {
  while (!heap_.empty()) {
    // Copy out before pop: the callback may schedule new events.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    ev.cb(now_);
  }
  return now_;
}

Ns EventQueue::run_until(Ns deadline) {
  while (!heap_.empty() && heap_.top().when <= deadline) {
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    ev.cb(now_);
  }
  if (!heap_.empty() && now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace tinca::sim
