// Discrete-event scheduler for multi-user / multi-node experiments.
//
// The paper's TPC-C (Fig 8) and cluster (Figs 10, 11) experiments involve
// concurrent actors — database users contending on a commit path, data nodes
// replicating over a network.  We model them with a classic discrete-event
// simulation: actors schedule callbacks at future virtual times; shared
// resources (the storage stack's commit lock, network links, node storage)
// are modelled as Resource objects that serialize access.
//
// Storage *service times* are obtained by actually running the real cache
// code under a SimClock cost probe, so contention effects emerge from
// measured costs rather than hand-tuned constants (DESIGN.md §5.5).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/sim_clock.h"

namespace tinca::sim {

/// Priority queue of timed callbacks; ties broken by insertion order so runs
/// are fully deterministic.
class EventQueue {
 public:
  using Callback = std::function<void(Ns now)>;

  /// Schedule `cb` to run at absolute virtual time `when` (>= now()).
  void schedule_at(Ns when, Callback cb);

  /// Schedule `cb` to run `delay` after the current time.
  void schedule_after(Ns delay, Callback cb) {
    schedule_at(now_ + delay, std::move(cb));
  }

  /// Current simulation time (time of the event being processed, or of the
  /// last processed event).
  [[nodiscard]] Ns now() const { return now_; }

  /// Run events until the queue is empty. Returns the final time.
  Ns run();

  /// Run events with time <= `deadline`; later events remain queued.
  /// Returns the simulation time after the run (== deadline if any events
  /// remain beyond it).
  Ns run_until(Ns deadline);

  /// True if no events are pending.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    Ns when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  Ns now_ = 0;
};

/// A serially-reusable resource (commit lock, disk queue, network link).
///
/// `acquire(now, service)` returns the time at which a request arriving at
/// `now` and holding the resource for `service` completes, FIFO-queued behind
/// earlier holders.  This is an analytic shortcut equivalent to queueing
/// callbacks, and is exact for FIFO single-server resources.
class Resource {
 public:
  /// Returns completion time of a request arriving at `now` needing
  /// `service` time of exclusive use.
  Ns acquire(Ns now, Ns service) {
    const Ns start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + service;
    total_busy_ += service;
    ++requests_;
    if (start > now) total_wait_ += start - now;
    return busy_until_;
  }

  /// Time the resource becomes free.
  [[nodiscard]] Ns busy_until() const { return busy_until_; }

  /// Total service time accumulated (utilization numerator).
  [[nodiscard]] Ns total_busy() const { return total_busy_; }

  /// Total time requests spent queued before service.
  [[nodiscard]] Ns total_wait() const { return total_wait_; }

  /// Number of requests served.
  [[nodiscard]] std::uint64_t requests() const { return requests_; }

 private:
  Ns busy_until_ = 0;
  Ns total_busy_ = 0;
  Ns total_wait_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace tinca::sim
