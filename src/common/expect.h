// Lightweight precondition / invariant checking used across the library.
//
// Following the C++ Core Guidelines (I.6 "Prefer Expects() for expressing
// preconditions", E.12), violated contracts throw rather than abort so that
// tests can assert on misuse and the crash-injection harness can unwind
// cleanly through the simulated storage stack.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tinca {

/// Thrown when a TINCA_EXPECT / TINCA_ENSURE contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace tinca

/// Precondition check: argument / caller error.
#define TINCA_EXPECT(cond, msg)                                               \
  do {                                                                        \
    if (!(cond))                                                              \
      ::tinca::detail::contract_fail("Precondition", #cond, __FILE__,         \
                                     __LINE__, (msg));                        \
  } while (0)

/// Postcondition / internal-invariant check: implementation error.
#define TINCA_ENSURE(cond, msg)                                               \
  do {                                                                        \
    if (!(cond))                                                              \
      ::tinca::detail::contract_fail("Invariant", #cond, __FILE__, __LINE__,  \
                                     (msg));                                  \
  } while (0)
