#include "common/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "common/expect.h"

namespace tinca {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  TINCA_EXPECT(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(width[c]))
         << (c == 0 ? std::left : std::right) << row[c]
         << std::resetiosflags(std::ios::adjustfield);
    }
    os << '\n';
  };
  emit(headers_);
  os << "  ";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c], '-');
    if (c + 1 < headers_.size()) os << "  ";
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::num(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string Table::num(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace tinca
