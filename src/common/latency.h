// Latency models for every simulated medium.
//
// These tables are the executable form of the paper's Table 1 (NVM
// technologies) and §5.1 prototype configuration: the authors ran NVDIMM at
// DRAM speed and *added* write/read delays of 180 ns / 50 ns to emulate PCM
// and 50 ns / 50 ns to emulate STT-RAM (§5.4.1).  We reproduce exactly that
// scheme: a DRAM base cost per 64 B cache line plus a per-technology extra
// charged on clflush (write path) and on load (read path).
#pragma once

#include <cstdint>
#include <string>

#include "common/sim_clock.h"

namespace tinca {

/// Per-technology NVM timing, charged per 64 B cache line.
struct NvmProfile {
  std::string name;
  /// Extra latency charged when a dirty line is flushed (clflush reaching
  /// the media), on top of the DRAM base.
  sim::Ns write_extra_ns = 0;
  /// Extra latency charged when a line is loaded from the media.
  sim::Ns read_extra_ns = 0;
  /// DRAM base cost of moving one line across the memory bus.
  sim::Ns base_line_ns = 15;
  /// Cost of the clflush instruction itself (invalidate + writeback issue).
  sim::Ns clflush_ns = 40;
  /// Cost of an sfence (store-buffer drain).
  sim::Ns sfence_ns = 10;

  /// Total charge for flushing one dirty line to the media.
  [[nodiscard]] sim::Ns line_flush_cost() const {
    return clflush_ns + base_line_ns + write_extra_ns;
  }
  /// Total charge for reading one line from the media.
  [[nodiscard]] sim::Ns line_read_cost() const {
    return base_line_ns + read_extra_ns;
  }
};

/// NVDIMM as shipped: DRAM-speed reads and writes (paper §5.1).
NvmProfile nvdimm_profile();
/// NVDIMM + 180/50 ns write/read delays = emulated PCM (the paper default).
NvmProfile pcm_profile();
/// NVDIMM + 50/50 ns write/read delays = emulated STT-RAM (§5.4.1).
NvmProfile sttram_profile();
/// NVDIMM + 250/100 ns delays ≈ ReRAM per Table 1 (not benchmarked in the
/// paper but listed; provided for completeness / ablations).
NvmProfile reram_profile();
/// Variant of `base` using clwb instead of clflush (§2.1: clflushopt/clwb
/// were proposed to replace clflush; clwb does not invalidate the line and
/// issues more cheaply).  Media write latency is unchanged.
NvmProfile with_clwb(NvmProfile base);

/// Look up a profile by case-insensitive name ("pcm", "nvdimm", "sttram",
/// "reram", each optionally suffixed "+clwb").  Throws ContractViolation
/// for unknown names.
NvmProfile nvm_profile_by_name(const std::string& name);

/// Block-device timing, charged per 4 KB block.
struct DiskProfile {
  std::string name;
  /// Fixed per-request overhead (interface, interrupt, FTL…).
  sim::Ns request_overhead_ns = 20 * sim::kUsec;
  /// Media cost per 4 KB write.
  sim::Ns write_block_ns = 0;
  /// Media cost per 4 KB read.
  sim::Ns read_block_ns = 0;
  /// Positioning cost charged when the access is not sequential to the
  /// previous one (HDD seek + rotational latency; ~0 for SSD).
  sim::Ns seek_ns = 0;
  /// Internal command parallelism exploited by queued (async) writes:
  /// NAND channels/planes for an SSD (~4 effective under NCQ), 1 for HDD.
  std::uint32_t internal_parallelism = 1;
};

/// SATA SSD model (~70 µs 4 KB write, ~60 µs read), the paper's default disk.
DiskProfile ssd_profile();
/// 7.2k RPM HDD model (~5 ms average positioning), §5.4.1's slow disk.
DiskProfile hdd_profile();
/// Look up by name ("ssd", "hdd").
DiskProfile disk_profile_by_name(const std::string& name);

/// Network link model: the clusters in §5.3 use 10 Gigabit Ethernet.
struct NetProfile {
  std::string name;
  /// One-way propagation + stack latency per message.
  sim::Ns rtt_ns = 100 * sim::kUsec;
  /// Bytes per second of link bandwidth.
  double bytes_per_sec = 1.25e9;  // 10 Gb/s

  /// Time to push `bytes` through the link (serialization only).
  [[nodiscard]] sim::Ns transfer_ns(std::uint64_t bytes) const {
    return static_cast<sim::Ns>(static_cast<double>(bytes) / bytes_per_sec *
                                1e9);
  }
};

/// 10 GbE as used by the paper's cluster testbed.
NetProfile tengig_profile();

}  // namespace tinca
