// Virtual-time clock.
//
// Every simulated device in this repository (NVM, SSD/HDD, network) charges
// its modelled latency to a SimClock instead of sleeping.  This is the single
// design decision that makes the benchmark harness practical: a "20 minute"
// paper experiment completes in seconds of wall time, results are exactly
// reproducible, and swapping PCM for STT-RAM is a table lookup instead of a
// reboot with different GRUB-injected delays (paper §5.1).
//
// The clock is deliberately *not* global: each harness owns one and threads
// it through the device stack, so independent experiments never interfere
// and tests can assert on exact charged costs.
#pragma once

#include <cstdint>

#include "common/expect.h"

namespace tinca::sim {

/// Nanoseconds of virtual time.
using Ns = std::uint64_t;

constexpr Ns kUsec = 1'000;
constexpr Ns kMsec = 1'000'000;
constexpr Ns kSec = 1'000'000'000;

/// Monotonic virtual clock that devices charge latency to.
///
/// The clock only moves forward.  Harnesses read `now()` before and after a
/// region of work to attribute cost; the discrete-event scheduler
/// (sim::EventQueue) uses a separate notion of event time and treats a
/// SimClock delta as the *service time* of a storage operation.
class SimClock {
 public:
  SimClock() = default;

  /// Current virtual time in nanoseconds since construction / last reset.
  [[nodiscard]] Ns now() const { return now_ns_; }

  /// Charge `ns` of latency (advance the clock).
  void advance(Ns ns) { now_ns_ += ns; }

  /// Reset to zero.  Only harness setup code should call this.
  void reset() { now_ns_ = 0; }

  /// Virtual seconds elapsed, as a double for rate computations.
  [[nodiscard]] double seconds() const {
    return static_cast<double>(now_ns_) / static_cast<double>(kSec);
  }

 private:
  Ns now_ns_ = 0;
};

/// RAII cost probe: measures virtual time charged within a scope.
class CostProbe {
 public:
  explicit CostProbe(const SimClock& clock) : clock_(clock), start_(clock.now()) {}

  /// Virtual nanoseconds charged since construction.
  [[nodiscard]] Ns elapsed() const {
    TINCA_ENSURE(clock_.now() >= start_, "clock moved backwards");
    return clock_.now() - start_;
  }

 private:
  const SimClock& clock_;
  Ns start_;
};

}  // namespace tinca::sim
