#include "common/latency.h"

#include <algorithm>
#include <cctype>

#include "common/expect.h"

namespace tinca {

namespace {
std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}
}  // namespace

NvmProfile nvdimm_profile() {
  NvmProfile p;
  p.name = "NVDIMM";
  p.write_extra_ns = 0;
  p.read_extra_ns = 0;
  return p;
}

NvmProfile pcm_profile() {
  NvmProfile p;
  p.name = "PCM";
  p.write_extra_ns = 180;  // §5.1: +180 ns write delay
  p.read_extra_ns = 50;    // §5.1: +50 ns read delay
  return p;
}

NvmProfile sttram_profile() {
  NvmProfile p;
  p.name = "STT-RAM";
  p.write_extra_ns = 50;  // §5.4.1: +50/50 ns
  p.read_extra_ns = 50;
  return p;
}

NvmProfile reram_profile() {
  NvmProfile p;
  p.name = "ReRAM";
  p.write_extra_ns = 250;  // Table 1: slower than PCM writes at line scale
  p.read_extra_ns = 100;
  return p;
}

NvmProfile with_clwb(NvmProfile base) {
  base.name += "+clwb";
  base.clflush_ns = 15;  // no invalidation, weaker ordering: cheaper issue
  return base;
}

NvmProfile nvm_profile_by_name(const std::string& name) {
  std::string n = lower(name);
  bool clwb = false;
  if (const auto pos = n.find("+clwb"); pos != std::string::npos) {
    clwb = true;
    n.erase(pos);
  }
  NvmProfile p;
  if (n == "nvdimm" || n == "dram") {
    p = nvdimm_profile();
  } else if (n == "pcm") {
    p = pcm_profile();
  } else if (n == "sttram" || n == "stt-ram") {
    p = sttram_profile();
  } else if (n == "reram") {
    p = reram_profile();
  } else {
    TINCA_EXPECT(false, "unknown NVM profile: " + name);
  }
  return clwb ? with_clwb(p) : p;
}

DiskProfile ssd_profile() {
  DiskProfile p;
  p.name = "SSD";
  p.request_overhead_ns = 20 * sim::kUsec;
  p.write_block_ns = 70 * sim::kUsec;
  p.read_block_ns = 60 * sim::kUsec;
  p.seek_ns = 0;
  p.internal_parallelism = 4;
  return p;
}

DiskProfile hdd_profile() {
  DiskProfile p;
  p.name = "HDD";
  p.request_overhead_ns = 50 * sim::kUsec;
  // 7.2k RPM: ~4.2 ms rotational half-period + ~4 ms seek on random access;
  // media transfer ~150 MB/s → ~27 µs per 4 KB once positioned.
  p.write_block_ns = 27 * sim::kUsec;
  p.read_block_ns = 27 * sim::kUsec;
  p.seek_ns = 8 * sim::kMsec;
  return p;
}

DiskProfile disk_profile_by_name(const std::string& name) {
  const std::string n = lower(name);
  if (n == "ssd") return ssd_profile();
  if (n == "hdd") return hdd_profile();
  TINCA_EXPECT(false, "unknown disk profile: " + name);
  return {};
}

NetProfile tengig_profile() {
  NetProfile p;
  p.name = "10GbE";
  p.rtt_ns = 100 * sim::kUsec;
  p.bytes_per_sec = 1.25e9;
  return p;
}

}  // namespace tinca
