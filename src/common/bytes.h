// Little-endian field codecs for persistent structures.
//
// Persistent layouts (cache entries, journal blocks, MiniFs metadata) are
// defined byte-by-byte rather than by struct overlay, so the on-"media"
// format is independent of host padding/alignment and the 7-byte disk block
// number field of a Tinca cache entry (paper Fig 5) can be expressed exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "common/expect.h"

namespace tinca {

/// Write `value`'s low `nbytes` bytes little-endian at `dst`.
inline void store_le(std::byte* dst, std::uint64_t value, std::size_t nbytes) {
  TINCA_EXPECT(nbytes <= 8, "store_le width");
  for (std::size_t i = 0; i < nbytes; ++i) {
    dst[i] = static_cast<std::byte>(value & 0xFF);
    value >>= 8;
  }
}

/// Read `nbytes` little-endian bytes at `src` into a uint64.
inline std::uint64_t load_le(const std::byte* src, std::size_t nbytes) {
  TINCA_EXPECT(nbytes <= 8, "load_le width");
  std::uint64_t value = 0;
  for (std::size_t i = nbytes; i-- > 0;) {
    value = (value << 8) | static_cast<std::uint64_t>(src[i]);
  }
  return value;
}

/// Fill a span with a repeating byte pattern derived from `seed` — used by
/// tests and workload generators to create verifiable block payloads.
inline void fill_pattern(std::span<std::byte> dst, std::uint64_t seed) {
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ULL + 1;
  std::size_t i = 0;
  while (i + 8 <= dst.size()) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    std::memcpy(dst.data() + i, &x, 8);
    i += 8;
  }
  for (; i < dst.size(); ++i) dst[i] = static_cast<std::byte>(x >> ((i % 8) * 8));
}

/// 64-bit FNV-1a over a span — cheap content fingerprint for tests.
inline std::uint64_t fingerprint(std::span<const std::byte> data) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace tinca
