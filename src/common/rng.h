// Deterministic pseudo-random generators for workload synthesis.
//
// We use xoshiro256** rather than std::mt19937 because workload generation is
// on the hot path of every benchmark (hundreds of millions of draws) and
// because its state is small enough to embed one generator per simulated
// user/stream, keeping runs reproducible under any interleaving.
#pragma once

#include <array>
#include <cstdint>

#include "common/expect.h"

namespace tinca {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit draw.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  std::uint64_t below(std::uint64_t bound) {
    TINCA_EXPECT(bound != 0, "Rng::below(0)");
    // Lemire's multiply-shift rejection method: unbiased and div-free.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    TINCA_EXPECT(lo <= hi, "Rng::range lo > hi");
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability `p` of true.
  bool chance(double p) { return uniform01() < p; }

  /// Exponentially distributed draw with the given mean (for think times).
  double exponential(double mean) {
    double u = uniform01();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * __builtin_log(u);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Zipf(θ) distribution over [0, n) using the Gray et al. (SIGMOD'94)
/// computation, the standard generator for skewed storage workloads
/// (TPC-C item popularity, web-proxy object popularity).
class Zipf {
 public:
  /// `n` items with skew `theta` in [0, 1). theta = 0 is uniform;
  /// theta ≈ 0.99 is the YCSB default "hot-spot" skew.
  Zipf(std::uint64_t n, double theta) : n_(n), theta_(theta) {
    TINCA_EXPECT(n > 0, "Zipf over empty domain");
    TINCA_EXPECT(theta >= 0.0 && theta < 1.0, "Zipf theta out of [0,1)");
    zetan_ = zeta(n, theta);
    zeta2_ = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - __builtin_pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  /// Draw an item index in [0, n); index 0 is the hottest item.
  std::uint64_t draw(Rng& rng) const {
    const double u = rng.uniform01();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + __builtin_pow(0.5, theta_)) return 1;
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        __builtin_pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

  [[nodiscard]] std::uint64_t domain() const { return n_; }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
      sum += 1.0 / __builtin_pow(static_cast<double>(i), theta);
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace tinca
