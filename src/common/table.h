// Minimal fixed-width table printer for the benchmark harness.
//
// Every bench binary regenerates one of the paper's figures as a text table
// with the same rows/series the figure plots; this helper keeps the output
// format uniform across binaries so EXPERIMENTS.md can quote it directly.
#pragma once

#include <string>
#include <vector>

namespace tinca {

/// Column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with a header rule and right-aligned numeric-looking cells.
  [[nodiscard]] std::string render() const;

  /// Convenience: format a double with `prec` digits after the point.
  static std::string num(double v, int prec = 2);

  /// Convenience: format an integer with thousands separators.
  static std::string num(std::uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tinca
