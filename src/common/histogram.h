// Fixed-bucket latency/size histogram used by benches and workload stats.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tinca {

/// Log-scaled histogram: bucket i covers [2^i, 2^(i+1)).  Cheap to update on
/// the hot path (a single bit-scan) and good enough for the percentile
/// summaries the benches print (p50/p95/p99/max).
class Histogram {
 public:
  Histogram();

  /// Record one sample (any unit; callers keep units consistent).
  void record(std::uint64_t value);

  /// Number of recorded samples.
  [[nodiscard]] std::uint64_t count() const { return count_; }

  /// Sum of recorded samples.
  [[nodiscard]] std::uint64_t sum() const { return sum_; }

  /// Arithmetic mean (0 if empty).
  [[nodiscard]] double mean() const;

  /// Approximate quantile in [0,1]: returns the upper bound of the bucket
  /// containing that quantile (0 if empty).
  [[nodiscard]] std::uint64_t quantile(double q) const;

  /// Largest recorded sample (exact).
  [[nodiscard]] std::uint64_t max() const { return max_; }

  /// Smallest recorded sample (exact; 0 if empty).
  [[nodiscard]] std::uint64_t min() const { return count_ ? min_ : 0; }

  /// Merge another histogram into this one.
  void merge(const Histogram& other);

  /// Reset to empty.
  void clear();

  /// One-line human-readable summary: "n=... mean=... p50=... p99=... max=...".
  [[nodiscard]] std::string summary() const;

 private:
  static constexpr int kBuckets = 64;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

}  // namespace tinca
