#include "workloads/tpcc.h"

#include <vector>

#include "blockdev/block_device.h"
#include "common/bytes.h"
#include "common/expect.h"

namespace tinca::workloads {

TpccWorkload::TpccWorkload(backend::TxnBackend& backend, const TpccConfig& cfg)
    : backend_(backend), cfg_(cfg), zipf_(cfg.dataset_blocks, cfg.zipf_theta) {
  TINCA_EXPECT(cfg.base_blkno + cfg.dataset_blocks <= backend.data_block_limit(),
               "TPC-C dataset exceeds the device");
}

void TpccWorkload::do_txn(Rng& rng, std::uint32_t reads, std::uint32_t writes) {
  std::vector<std::byte> buf(blockdev::kBlockSize);
  for (std::uint32_t i = 0; i < reads; ++i) {
    const std::uint64_t page = cfg_.base_blkno + zipf_.draw(rng);
    backend_.read_block(page, buf);
    ++stats_.page_reads;
  }
  if (writes > 0) {
    backend_.begin();
    for (std::uint32_t i = 0; i < writes; ++i) {
      const std::uint64_t page = cfg_.base_blkno + zipf_.draw(rng);
      fill_pattern(buf, page * 7919 + payload_seq_++);
      backend_.stage(page, buf);
      ++stats_.page_writes;
    }
    backend_.commit();
  }
  ++stats_.txns;
}

TpccKind TpccWorkload::execute_txn(Rng& rng) {
  const std::uint64_t pick = rng.below(100);
  if (pick < 45) {
    do_txn(rng, 15, 10);
    return TpccKind::kNewOrder;
  }
  if (pick < 88) {
    do_txn(rng, 6, 4);
    return TpccKind::kPayment;
  }
  if (pick < 92) {
    do_txn(rng, 12, 0);
    return TpccKind::kOrderStatus;
  }
  if (pick < 96) {
    do_txn(rng, 30, 25);
    return TpccKind::kDelivery;
  }
  do_txn(rng, 40, 0);
  return TpccKind::kStockLevel;
}

}  // namespace tinca::workloads
