// Filebench personalities over MiniFs (Table 2, Fig 3(a), Fig 11, Fig 13).
//
// Three of Filebench's canonical personalities, with the paper's op mixes
// and 16 KB request size:
//
//   fileserver  write-heavy (R/W 1/2): create / whole-file write / append /
//               whole-file read / delete / stat over many files
//   webproxy    read-heavy (R/W 5/1): mostly whole-file reads with a low
//               rate of re-creation, Zipf-popular files
//   varmail     1/1 with frequent fsync: create+append+fsync / read / delete
//               (mail spool behaviour)
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "fs/minifs.h"

namespace tinca::workloads {

/// Which personality to run.
enum class FilebenchKind : std::uint8_t { kFileserver, kWebproxy, kVarmail };

/// Personality parameters (defaults are scaled-down Table 2 values).
struct FilebenchConfig {
  FilebenchKind kind = FilebenchKind::kFileserver;
  /// Number of files in the working set.
  std::uint64_t nfiles = 512;
  /// Mean file size in bytes (files are created at 25 %–175 % of this).
  std::uint64_t mean_file_bytes = 64 * 1024;
  /// I/O request size (Table 2: 16 KB).
  std::uint64_t request_bytes = 16 * 1024;
  /// Directory fan-out.
  std::uint64_t files_per_dir = 64;
  /// Zipf skew of file popularity.
  double zipf_theta = 0.6;
  /// RNG seed.
  std::uint64_t seed = 11;
};

/// Results of one personality run.
struct FilebenchResult {
  std::uint64_t ops = 0;          ///< completed file operations
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;    ///< create/write/append/delete
  sim::Ns elapsed_ns = 0;

  [[nodiscard]] double ops_per_sec() const {
    return elapsed_ns == 0
               ? 0.0
               : static_cast<double>(ops) /
                     (static_cast<double>(elapsed_ns) / 1e9);
  }
};

/// A Filebench personality bound to a mounted MiniFs.
class FilebenchWorkload {
 public:
  FilebenchWorkload(fs::MiniFs& fsys, const FilebenchConfig& cfg);

  /// Create the directory tree and initial file population (not timed by
  /// the paper either; call before run()).
  void populate();

  /// Run the personality for `duration` of virtual time on `clock`.
  FilebenchResult run(sim::SimClock& clock, sim::Ns duration);

  /// Execute exactly one operation (used by the cluster driver, which
  /// schedules ops itself).
  void step();

  [[nodiscard]] const FilebenchResult& totals() const { return totals_; }

 private:
  [[nodiscard]] std::string path_of(std::uint64_t file_id) const;
  std::uint64_t pick_file();
  void op_create(std::uint64_t id);
  void op_delete(std::uint64_t id);
  void op_whole_read(std::uint64_t id);
  void op_append(std::uint64_t id, bool with_fsync);
  void op_stat(std::uint64_t id);

  fs::MiniFs& fsys_;
  FilebenchConfig cfg_;
  Rng rng_;
  Zipf zipf_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::byte> iobuf_;
  FilebenchResult totals_;
  std::uint64_t payload_seq_ = 0;
};

}  // namespace tinca::workloads
