// Fio-style micro-benchmark: mixed random 4 KB reads and writes (Table 2).
//
// The paper drives Fio against a 20 GB file with read/write ratios 3/7, 5/5
// and 7/3 for 20 minutes (§5.2.1).  This generator issues uniformly random
// 4 KB requests over a block range through a TxnBackend; writes are grouped
// into compound transactions the way Ext4's journal batches them.
#pragma once

#include <cstdint>

#include "backend/txn_backend.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/sim_clock.h"

namespace tinca::workloads {

/// Fio run parameters.
struct FioConfig {
  /// Number of 4 KB blocks in the target "file".
  std::uint64_t dataset_blocks = 16384;
  /// Percentage of operations that are writes (paper sweeps 70/50/30).
  int write_pct = 70;
  /// Writes grouped per transaction (journal batching).
  std::uint64_t writes_per_txn = 64;
  /// First block of the dataset within the backend's address space.
  std::uint64_t base_blkno = 0;
  /// RNG seed.
  std::uint64_t seed = 42;
};

/// Results of one Fio run.
struct FioResult {
  std::uint64_t write_ops = 0;
  std::uint64_t read_ops = 0;
  sim::Ns elapsed_ns = 0;
  /// Virtual-time cost per individual write request (commit costs are
  /// attributed to the write that triggered the group commit, as an
  /// application blocked on fsync would perceive them).
  Histogram write_lat_ns;
  /// Virtual-time cost per read request.
  Histogram read_lat_ns;

  [[nodiscard]] double write_iops() const {
    return elapsed_ns == 0
               ? 0.0
               : static_cast<double>(write_ops) /
                     (static_cast<double>(elapsed_ns) / 1e9);
  }
  [[nodiscard]] double read_iops() const {
    return elapsed_ns == 0
               ? 0.0
               : static_cast<double>(read_ops) /
                     (static_cast<double>(elapsed_ns) / 1e9);
  }
};

/// Run Fio for `duration` of virtual time measured on `clock` (the clock the
/// backend's devices charge to).
FioResult run_fio(backend::TxnBackend& backend, sim::SimClock& clock,
                  sim::Ns duration, const FioConfig& cfg);

}  // namespace tinca::workloads
