#include "workloads/filebench.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/expect.h"

namespace tinca::workloads {

FilebenchWorkload::FilebenchWorkload(fs::MiniFs& fsys,
                                     const FilebenchConfig& cfg)
    : fsys_(fsys),
      cfg_(cfg),
      rng_(cfg.seed),
      zipf_(cfg.nfiles, cfg.zipf_theta),
      alive_(cfg.nfiles, 0),
      iobuf_(cfg.request_bytes) {
  TINCA_EXPECT(cfg.nfiles > 0, "empty file set");
  TINCA_EXPECT(cfg.request_bytes % 1024 == 0, "request size not KB aligned");
}

std::string FilebenchWorkload::path_of(std::uint64_t file_id) const {
  return "/d" + std::to_string(file_id / cfg_.files_per_dir) + "/f" +
         std::to_string(file_id);
}

std::uint64_t FilebenchWorkload::pick_file() { return zipf_.draw(rng_); }

void FilebenchWorkload::populate() {
  const std::uint64_t ndirs =
      (cfg_.nfiles + cfg_.files_per_dir - 1) / cfg_.files_per_dir;
  for (std::uint64_t d = 0; d < ndirs; ++d)
    fsys_.mkdir("/d" + std::to_string(d));
  for (std::uint64_t f = 0; f < cfg_.nfiles; ++f) op_create(f);
  fsys_.fsync();
}

void FilebenchWorkload::op_create(std::uint64_t id) {
  const std::string path = path_of(id);
  if (alive_[id]) return;
  fsys_.create(path);
  // File size: 25 %–175 % of the mean, written in request-size chunks.
  const std::uint64_t size =
      cfg_.mean_file_bytes / 4 +
      rng_.below(cfg_.mean_file_bytes * 3 / 2 + 1);
  std::uint64_t off = 0;
  while (off < size) {
    const std::uint64_t chunk = std::min<std::uint64_t>(cfg_.request_bytes, size - off);
    fill_pattern(std::span(iobuf_).subspan(0, chunk), id * 131 + payload_seq_++);
    fsys_.write(path, off, std::span(iobuf_).subspan(0, chunk));
    off += chunk;
  }
  alive_[id] = 1;
}

void FilebenchWorkload::op_delete(std::uint64_t id) {
  if (!alive_[id]) return;
  fsys_.remove(path_of(id));
  alive_[id] = 0;
}

void FilebenchWorkload::op_whole_read(std::uint64_t id) {
  if (!alive_[id]) {
    op_create(id);
    return;
  }
  const std::string path = path_of(id);
  const std::uint64_t size = fsys_.file_size(path);
  std::uint64_t off = 0;
  while (off < size) {
    const std::size_t got = fsys_.read(path, off, iobuf_);
    if (got == 0) break;
    off += got;
  }
}

void FilebenchWorkload::op_append(std::uint64_t id, bool with_fsync) {
  if (!alive_[id]) {
    op_create(id);
    return;
  }
  const std::string path = path_of(id);
  // Keep appends within MiniFs's file-size ceiling by rewriting instead of
  // growing without bound.
  if (fsys_.file_size(path) + cfg_.request_bytes > fsys_.max_file_bytes()) {
    op_delete(id);
    op_create(id);
    return;
  }
  fill_pattern(iobuf_, id * 977 + payload_seq_++);
  fsys_.append(path, iobuf_);
  if (with_fsync) fsys_.fsync();
}

void FilebenchWorkload::op_stat(std::uint64_t id) {
  if (alive_[id]) (void)fsys_.file_size(path_of(id));
}

void FilebenchWorkload::step() {
  const std::uint64_t id = pick_file();
  const std::uint64_t pick = rng_.below(100);
  switch (cfg_.kind) {
    case FilebenchKind::kFileserver:
      // R/W 1/2: reads ~33 %, writes (create/write/append/delete) ~61 %.
      if (pick < 33) {
        op_whole_read(id);
        ++totals_.read_ops;
      } else if (pick < 53) {
        op_append(id, false);
        ++totals_.write_ops;
      } else if (pick < 75) {
        op_delete(id);
        op_create(id);
        ++totals_.write_ops;
      } else if (pick < 94) {
        op_create(id);  // no-op when alive; keeps population churning
        op_append(id, false);
        ++totals_.write_ops;
      } else {
        op_stat(id);
      }
      break;
    case FilebenchKind::kWebproxy:
      // R/W 5/1: dominated by whole-file reads of popular objects.
      if (pick < 80) {
        op_whole_read(id);
        ++totals_.read_ops;
      } else if (pick < 96) {
        op_append(id, false);
        ++totals_.write_ops;
      } else {
        op_delete(id);
        op_create(id);
        ++totals_.write_ops;
      }
      break;
    case FilebenchKind::kVarmail:
      // R/W 1/1 with fsync after each delivery (mail spool).
      if (pick < 25) {
        op_whole_read(id);
        ++totals_.read_ops;
      } else if (pick < 50) {
        op_append(id, true);
        ++totals_.write_ops;
      } else if (pick < 75) {
        op_delete(id);
        op_create(id);
        fsys_.fsync();
        ++totals_.write_ops;
      } else {
        op_whole_read(id);
        ++totals_.read_ops;
      }
      break;
  }
  ++totals_.ops;
}

FilebenchResult FilebenchWorkload::run(sim::SimClock& clock, sim::Ns duration) {
  const FilebenchResult before = totals_;
  const sim::Ns start = clock.now();
  const sim::Ns deadline = start + duration;
  while (clock.now() < deadline) step();
  fsys_.fsync();
  FilebenchResult r;
  r.ops = totals_.ops - before.ops;
  r.read_ops = totals_.read_ops - before.read_ops;
  r.write_ops = totals_.write_ops - before.write_ops;
  r.elapsed_ns = clock.now() - start;
  return r;
}

}  // namespace tinca::workloads
