// TPC-C-style OLTP page workload (paper §5.2.2, Fig 8 / Fig 12).
//
// The paper runs MySQL under HammerDB with 350 warehouses (~32 GB) and 5–60
// users.  What reaches the storage stack is the database's page traffic:
// each TPC-C transaction reads a handful of B-tree pages (warehouse,
// district, customer, stock, order lines) and commits a set of dirtied pages
// plus log writes, with item popularity following the TPC-C NURand skew
// (approximated here by a Zipf over the stock/customer pages).
//
// Transaction page footprints below follow the TPC-C clause-by-clause access
// counts commonly used in storage studies: New-Order (45 %) r15/w10,
// Payment (43 %) r6/w4, Order-Status (4 %) r12/w0, Delivery (4 %) r30/w25,
// Stock-Level (4 %) r40/w0.
//
// Concurrency (the users axis of Fig 8) is handled by the benches with a
// discrete-event simulation: this class provides `execute_txn`, which runs
// one transaction synchronously against the backend so the DES can measure
// its true storage service time.
#pragma once

#include <cstdint>

#include "backend/txn_backend.h"
#include "common/rng.h"
#include "common/sim_clock.h"

namespace tinca::workloads {

/// TPC-C transaction types.
enum class TpccKind : std::uint8_t {
  kNewOrder,
  kPayment,
  kOrderStatus,
  kDelivery,
  kStockLevel,
};

/// Workload shape parameters.
struct TpccConfig {
  /// Pages in the database working set (the paper's 32 GB scaled down).
  std::uint64_t dataset_blocks = 65536;
  /// First page of the database in the backend address space.
  std::uint64_t base_blkno = 0;
  /// Zipf skew of page popularity (NURand-like hot spots).
  double zipf_theta = 0.7;
  /// RNG seed.
  std::uint64_t seed = 7;
};

/// Counters for one TPC-C stream.
struct TpccStats {
  std::uint64_t txns = 0;
  std::uint64_t page_reads = 0;
  std::uint64_t page_writes = 0;
};

/// One TPC-C client stream bound to a backend.
class TpccWorkload {
 public:
  TpccWorkload(backend::TxnBackend& backend, const TpccConfig& cfg);

  /// Execute one transaction (type drawn per the TPC-C mix): page reads
  /// through the cache, then one commit of the dirtied pages.  Returns the
  /// type executed.
  TpccKind execute_txn(Rng& rng);

  [[nodiscard]] const TpccStats& stats() const { return stats_; }

 private:
  void do_txn(Rng& rng, std::uint32_t reads, std::uint32_t writes);

  backend::TxnBackend& backend_;
  TpccConfig cfg_;
  Zipf zipf_;
  TpccStats stats_;
  std::uint64_t payload_seq_ = 0;
};

}  // namespace tinca::workloads
