#include "workloads/teragen.h"

#include <algorithm>

#include "blockdev/block_device.h"
#include "common/bytes.h"
#include "common/expect.h"

namespace tinca::workloads {

TeraGenSink::TeraGenSink(backend::TxnBackend& backend, std::uint64_t base_blkno,
                         std::uint64_t limit_blocks, const TeraGenConfig& cfg)
    : backend_(backend),
      cfg_(cfg),
      base_blkno_(base_blkno),
      limit_blocks_(limit_blocks),
      packet_(cfg.rows_per_packet * cfg.row_bytes),
      rng_(cfg.seed) {
  TINCA_EXPECT(limit_blocks_ >= 16, "TeraGen sink range too small");
  TINCA_EXPECT(base_blkno_ + limit_blocks_ <= backend.data_block_limit(),
               "TeraGen range exceeds the device");
}

void TeraGenSink::flush_packet() {
  if (packet_fill_ == 0) return;
  const std::uint64_t nblocks =
      (packet_fill_ + blockdev::kBlockSize - 1) / blockdev::kBlockSize;
  backend_.begin();
  std::vector<std::byte> blk(blockdev::kBlockSize, std::byte{0});
  for (std::uint64_t b = 0; b < nblocks; ++b) {
    const std::size_t off = b * blockdev::kBlockSize;
    const std::size_t chunk =
        std::min<std::size_t>(blockdev::kBlockSize, packet_fill_ - off);
    std::fill(blk.begin(), blk.end(), std::byte{0});
    std::copy_n(packet_.begin() + static_cast<std::ptrdiff_t>(off), chunk,
                blk.begin());
    backend_.stage(base_blkno_ + (next_block_ % limit_blocks_), blk);
    ++next_block_;
  }
  backend_.commit();
  packet_fill_ = 0;
}

void TeraGenSink::generate(std::uint64_t bytes) {
  std::uint64_t produced = 0;
  while (produced < bytes) {
    // One 100 B row: 10 B pseudo-random key + filler value, like TeraGen.
    std::byte* row = packet_.data() + packet_fill_;
    fill_pattern(std::span(row, cfg_.row_bytes), rng_.next());
    packet_fill_ += cfg_.row_bytes;
    produced += cfg_.row_bytes;
    bytes_ += cfg_.row_bytes;
    ++rows_;
    if (packet_fill_ + cfg_.row_bytes > packet_.size()) flush_packet();
  }
  flush_packet();
}

}  // namespace tinca::workloads
