// TeraGen-style sequential data generator (paper §5.3.1, Fig 10).
//
// TeraGen writes 100-byte rows sequentially; on a data node the stream
// arrives in large packets and lands on the local file system as sequential
// appends.  This generator produces the row payload and a local sink that
// commits the stream through a TxnBackend in 4 KB blocks with HDFS-like
// write batching.  The cluster bench (Fig 10) drives the same sink on each
// data node behind the replication pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "backend/txn_backend.h"
#include "common/rng.h"

namespace tinca::workloads {

/// TeraGen parameters.
struct TeraGenConfig {
  /// Bytes of one row (TeraGen: 10 B key + 90 B value).
  std::uint64_t row_bytes = 100;
  /// Rows per buffered packet before the sink flushes a batch.
  std::uint64_t rows_per_packet = 640;  ///< 64 KB packets
  /// RNG seed for the row contents.
  std::uint64_t seed = 1;
};

/// Writes a sequential row stream into a block range via transactions.
class TeraGenSink {
 public:
  /// `base_blkno` is where the stream starts; `limit_blocks` bounds it
  /// (the sink wraps around, modelling log-structured reuse at small scale).
  TeraGenSink(backend::TxnBackend& backend, std::uint64_t base_blkno,
              std::uint64_t limit_blocks, const TeraGenConfig& cfg = {});

  /// Generate and persist `bytes` of row data.  Each packet becomes one
  /// committed transaction of sequential blocks.
  void generate(std::uint64_t bytes);

  /// Rows written so far.
  [[nodiscard]] std::uint64_t rows_written() const { return rows_; }

  /// Bytes written so far.
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_; }

 private:
  void flush_packet();

  backend::TxnBackend& backend_;
  TeraGenConfig cfg_;
  std::uint64_t base_blkno_;
  std::uint64_t limit_blocks_;
  std::uint64_t next_block_ = 0;  ///< sequential cursor (relative)
  std::uint64_t rows_ = 0;
  std::uint64_t bytes_ = 0;
  std::vector<std::byte> packet_;
  std::size_t packet_fill_ = 0;
  Rng rng_;
};

}  // namespace tinca::workloads
