#include "workloads/fio.h"

#include <vector>

#include "blockdev/block_device.h"
#include "common/bytes.h"
#include "common/expect.h"

namespace tinca::workloads {

FioResult run_fio(backend::TxnBackend& backend, sim::SimClock& clock,
                  sim::Ns duration, const FioConfig& cfg) {
  TINCA_EXPECT(cfg.write_pct >= 0 && cfg.write_pct <= 100, "bad write_pct");
  TINCA_EXPECT(cfg.base_blkno + cfg.dataset_blocks <= backend.data_block_limit(),
               "Fio dataset exceeds the device");
  Rng rng(cfg.seed);
  FioResult result;
  std::vector<std::byte> buf(blockdev::kBlockSize);

  const sim::Ns start = clock.now();
  const sim::Ns deadline = start + duration;
  std::uint64_t staged_in_txn = 0;
  bool txn_open = false;
  std::uint64_t payload_seq = 0;

  while (clock.now() < deadline) {
    const bool is_write =
        rng.below(100) < static_cast<std::uint64_t>(cfg.write_pct);
    const std::uint64_t blkno = cfg.base_blkno + rng.below(cfg.dataset_blocks);
    const sim::CostProbe probe(clock);
    if (is_write) {
      fill_pattern(buf, blkno * 1000003 + payload_seq++);
      if (!txn_open) {
        backend.begin();
        txn_open = true;
      }
      backend.stage(blkno, buf);
      ++result.write_ops;
      if (++staged_in_txn >= cfg.writes_per_txn) {
        backend.commit();
        txn_open = false;
        staged_in_txn = 0;
      }
      result.write_lat_ns.record(probe.elapsed());
    } else {
      backend.read_block(blkno, buf);
      ++result.read_ops;
      result.read_lat_ns.record(probe.elapsed());
    }
  }
  if (txn_open) backend.commit();
  result.elapsed_ns = clock.now() - start;
  return result;
}

}  // namespace tinca::workloads
