// Sharded, thread-safe front-end over N independent TincaCache shards.
//
// The paper's Tinca admits a single committing transaction at a time (§4.4):
// one ring, one Head/Tail pair, one global ordering of commits.  That is
// faithful for reproducing Fig 7–13 but caps throughput at one core.
// ShardedTinca partitions both address spaces so unrelated transactions
// commit in parallel:
//
//   * the NVM device is split into `num_shards` equal, 4 KB-aligned
//     sub-range views (NvmDevice view constructor); each shard formats and
//     recovers a complete private Tinca layout — superblock, ring, entry
//     table, data area — inside its partition;
//   * the disk block space is partitioned by a hash of the disk block
//     number; every block has exactly one home shard, so shards never share
//     a cache entry, an NVM block, a ring slot or a disk block;
//   * each shard pairs its TincaCache with one mutex and one SimClock, so a
//     single-shard transaction — the common case — takes one lock and runs
//     the paper's commit protocol unchanged.
//
// Cross-shard transactions acquire the locks of every involved shard in
// ascending shard-id order (a global total order, hence no deadlocks), then
// commit ATOMICALLY across shards (DESIGN.md §15): each involved shard
// stages one anchored batch on one of its commit streams, every batch is
// flushed, and the whole set becomes durable through ONE cross-stream
// commit record — a single 64 B line in shard 0's commit directory naming
// the participating (shard, stream) pairs, flushed in the same pass and
// covered by the same single sfence.  Recovery keeps the anchored batches
// only when the record landed AND every participant's batch survived, so a
// crash anywhere in the protocol is all-or-nothing for the transaction —
// the old ascending-shard-prefix contract is retired.
//
// The shared backing disk is serialized behind a LockedBlockDevice; shards
// only reach it for misses, evictions and flushes, never while holding
// another shard's lock.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "blockdev/locked_block_device.h"
#include "obs/trace.h"
#include "tinca/tinca_cache.h"

namespace tinca::shard {

/// Tunables for a ShardedTinca instance.
struct ShardedConfig {
  /// Number of independent shards (NVM partitions).  Must divide the device
  /// into partitions large enough for a usable Tinca layout each.
  std::uint32_t num_shards = 4;
  /// Per-shard Tinca configuration (ring size is per shard).
  core::TincaConfig shard;
  /// Leader/follower group commit (DESIGN.md §14): concurrent single-shard
  /// committers targeting the same shard batch into one coalesced ring
  /// append, one flush pass and one fence.  Cross-shard transactions always
  /// take the legacy ascending-lock path.
  bool group_commit = false;
  /// How long (wall-clock µs) a batch leader lingers for followers before
  /// closing its batch.  0 closes the batch as soon as the queue drains.
  std::uint32_t group_linger_us = 50;
  /// The leader closes a batch early once this many transactions are queued
  /// (bounds commit latency under bursts).
  std::uint32_t group_max_batch = 32;
  /// Fault-injection self-test hook: skip the clflush of the cross-stream
  /// commit record.  A sabotaged stack must FAIL the crash oracles (an acked
  /// cross-shard transaction rolls back), proving the record's flush is
  /// what the atomicity argument actually rests on.
  bool sabotage_skip_commit_record_flush = false;
};

/// A running sharded transaction: blocks staged in DRAM, possibly spanning
/// several shards.  Created by ShardedTinca::init_txn(); not thread-safe
/// itself (one owner thread), but distinct transactions commit concurrently.
class ShardedTxn {
 public:
  /// Stage a 4 KB whole-block update; restaging a block keeps the latest.
  void add(std::uint64_t disk_blkno, std::span<const std::byte> data);

  /// Number of distinct blocks staged.
  [[nodiscard]] std::size_t block_count() const { return order_.size(); }

  /// Whether the transaction is still open (not committed/aborted).
  [[nodiscard]] bool open() const { return open_; }

 private:
  friend class ShardedTinca;
  ShardedTxn() = default;

  bool open_ = true;
  std::vector<std::uint64_t> order_;  ///< staging order, deduplicated
  std::unordered_map<std::uint64_t, std::vector<std::byte>> blocks_;
};

class ShardedTinca;

/// A pinned multi-shard read snapshot: one commit-epoch pin per shard,
/// captured together at open_snapshot().  Consistency is per shard — each
/// shard's pin freezes a committed boundary of that shard's history, the
/// same per-shard atomicity commit() provides (DESIGN.md §7/§12).  Reads
/// against a snapshot never take a shard mutex unless a shard's pin
/// registry was full at open time.  One owner thread.
///
/// RAII: the destructor releases any still-held pins, so an early return or
/// an exception between open and close (snapshot_read can throw IoError)
/// cannot leak registry pins — a leaked pin silently blocks version
/// trimming and defers writebacks forever.  Move-only: a copy would
/// double-release its slots.  Must not outlive the ShardedTinca that
/// opened it.
class ShardedSnapshot {
 public:
  ShardedSnapshot() = default;
  ~ShardedSnapshot() { release(); }

  ShardedSnapshot(ShardedSnapshot&& other) noexcept
      : open_(other.open_), owner_(other.owner_),
        pins_(std::move(other.pins_)) {
    other.open_ = false;
    other.owner_ = nullptr;
    other.pins_.clear();
  }
  ShardedSnapshot& operator=(ShardedSnapshot&& other) noexcept {
    if (this != &other) {
      release();
      open_ = other.open_;
      owner_ = other.owner_;
      pins_ = std::move(other.pins_);
      other.open_ = false;
      other.owner_ = nullptr;
      other.pins_.clear();
    }
    return *this;
  }
  ShardedSnapshot(const ShardedSnapshot&) = delete;
  ShardedSnapshot& operator=(const ShardedSnapshot&) = delete;

  /// Whether the snapshot is open (pins held).
  [[nodiscard]] bool open() const { return open_; }

  /// The epoch pinned on shard `s` (diagnostic/test hook).
  [[nodiscard]] std::uint64_t epoch(std::uint32_t s) const {
    return pins_[s].epoch;
  }

 private:
  friend class ShardedTinca;
  void release() noexcept;  // unpin everything; idempotent

  bool open_ = false;
  ShardedTinca* owner_ = nullptr;         ///< set by open_snapshot()
  std::vector<core::SnapshotPin> pins_;  ///< indexed by shard id
};

/// The sharded transactional NVM cache front-end.  All public methods are
/// thread-safe; per-shard mutexes serialize only the shards a call touches.
class ShardedTinca {
 public:
  /// Format every shard's partition afresh (like mkfs on each).
  static std::unique_ptr<ShardedTinca> format(nvm::NvmDevice& nvm,
                                              blockdev::BlockDevice& disk,
                                              ShardedConfig cfg = {});

  /// Mount an existing sharded cache, running crash recovery per shard.
  /// `cfg` geometry (shard count, ring size) must match the format call.
  static std::unique_ptr<ShardedTinca> recover(nvm::NvmDevice& nvm,
                                               blockdev::BlockDevice& disk,
                                               ShardedConfig cfg = {});

  /// Stops any running cleaner threads before the shards go away.
  ~ShardedTinca();

  // --- Background cleaners (DESIGN.md §11) ---------------------------------
  //
  // With cfg.shard.cleaner.mode != kDisabled, every shard owns a private
  // cleaner, but all of them pull from ONE shared Pacer (created here unless
  // the caller supplied one): each step deposits a fair slice of the global
  // batch budget, so N hot shards do not multiply the background write rate
  // by N.

  /// Stepped mode: run one cleaner quantum on every shard, locking each
  /// shard's mutex.  No-op for shards without a cleaner.
  void step_cleaners();

  /// Thread mode: spawn each shard's cleaner thread, serialized against
  /// foreground commits via the shard mutex.
  void start_cleaner_threads();

  /// Stop and join all cleaner threads (idempotent; implied by destruction).
  void stop_cleaner_threads();

  // --- Transactional primitives -------------------------------------------

  /// Initiate a running transaction (DRAM staging only).
  [[nodiscard]] ShardedTxn init_txn() const { return ShardedTxn(); }

  /// Durably commit `txn`.  Single-shard transactions take one lock and the
  /// paper's exact protocol; cross-shard transactions lock ascending, stage
  /// one anchored batch per involved shard and commit them all atomically
  /// through one cross-stream commit record (DESIGN.md §15).
  void commit(ShardedTxn& txn);

  /// Commit several running transactions as one deterministic batch
  /// (DESIGN.md §14): per involved shard, every member's portion joins that
  /// shard's single batch — one coalesced ring append, one flush pass, and
  /// one fence for the WHOLE batch.  A batch spanning several shards commits
  /// atomically across all of them through one cross-stream commit record
  /// (§15).  Single-threaded entry point (no batcher, no lingering) for
  /// backends and fuzz harnesses that form batches themselves.  Every member
  /// is closed on return.
  void commit_batch(std::span<ShardedTxn* const> txns);

  /// Abort a running transaction; staged blocks are discarded.
  void abort(ShardedTxn& txn);

  // --- Cached block I/O ----------------------------------------------------

  /// Read one block through its home shard.  Clean hits on committed blocks
  /// take the LOCK-FREE fast path: an epoch pin plus a version-chain lookup
  /// under acquire/release atomics, no shard mutex (DESIGN.md §12).  Blocks
  /// without a chain version (uncached, or clean read fills) fall back to
  /// the locked path, which fills the cache and updates the LRU.
  void read_block(std::uint64_t disk_blkno, std::span<std::byte> dst);

  /// The pre-MVCC read path: always acquires the home shard's mutex.  Kept
  /// public as the baseline for bench_mvcc_reads and for callers that need
  /// the LRU touched unconditionally.
  void read_block_locked(std::uint64_t disk_blkno, std::span<std::byte> dst);

  // --- Snapshot reads (MVCC, DESIGN.md §12) --------------------------------

  /// Pin every shard's current commit epoch.  Lock-free; a shard whose pin
  /// registry is full is marked in the snapshot and its reads degrade to
  /// the locked path (counted in that shard's mvcc.lock_fallbacks).  A
  /// seqlock against the cross-shard publish window guarantees the pins
  /// never straddle a cross-stream commit: a snapshot either sees ALL of an
  /// atomic cross-shard transaction or none of it (DESIGN.md §15).
  [[nodiscard]] ShardedSnapshot open_snapshot();

  /// Read `disk_blkno` as of the snapshot.  Lock-free on shards with a
  /// valid pin: version-chain hit or a disk fallback through the serialized
  /// shared disk, never the shard mutex.
  void snapshot_read(const ShardedSnapshot& snap, std::uint64_t disk_blkno,
                     std::span<std::byte> dst);

  /// Release all pins now, ahead of the snapshot's destructor (which
  /// releases whatever is still held).  Calling it twice is a contract
  /// violation; letting the destructor do the work is not.
  void close_snapshot(ShardedSnapshot& snap);

  /// Convenience: durably write one block as a single-block transaction.
  void write_block(std::uint64_t disk_blkno, std::span<const std::byte> data);

  /// Write every shard's dirty blocks back to disk.
  void flush_dirty();

  // --- Introspection -------------------------------------------------------

  /// Home shard of a disk block (stable hash of the block number).
  [[nodiscard]] std::uint32_t shard_of(std::uint64_t disk_blkno) const;

  /// Number of shards.
  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }

  /// Whether `disk_blkno` is cached (in its home shard).
  [[nodiscard]] bool cached(std::uint64_t disk_blkno);

  /// Whether `disk_blkno` is cached and dirty.
  [[nodiscard]] bool dirty(std::uint64_t disk_blkno);

  /// Largest per-shard transaction this cache can commit; a transaction
  /// whose blocks all hash to one shard is bounded by that shard alone, so
  /// the conservative global bound is the per-shard bound.
  [[nodiscard]] std::uint64_t max_txn_blocks() const;

  /// Sum of all shards' cache stats (counters and the per-txn histogram).
  /// Only stable while no commits are in flight.
  [[nodiscard]] core::TincaCacheStats aggregated_stats() const;

  // --- Observability (src/obs/) --------------------------------------------

  /// Wall-clock tracer for the cross-shard commit phases: shard.lock_wait
  /// (mutex acquisition — lock convoys show up here), shard.publish (the
  /// per-shard sub-commit loop) and shard.commit (the whole call).  Host
  /// time base, one Chrome track per calling thread.
  [[nodiscard]] obs::Tracer& tracer() { return trace_; }
  [[nodiscard]] const obs::Tracer& tracer() const { return trace_; }

  /// Enable span recording on the front-end and every shard cache.
  void enable_tracing(bool on = true);

  /// Attach one sink to the front-end and all shard caches, and name each
  /// shard's virtual-time Chrome track ("shard <s>").  nullptr detaches.
  void attach_trace_sink(obs::TraceSink* sink);

  /// Register the front-end span histograms plus every shard's metrics
  /// (under "<prefix>shard<i>.") into `reg`.
  void register_metrics(obs::MetricsRegistry& reg,
                        const std::string& prefix) const;

  /// Direct shard access for tests and benches (callers synchronize).
  [[nodiscard]] core::TincaCache& shard_cache(std::uint32_t s) {
    return *shards_[s]->cache;
  }
  [[nodiscard]] nvm::NvmDevice& shard_nvm(std::uint32_t s) {
    return *shards_[s]->view;
  }
  [[nodiscard]] sim::SimClock& shard_clock(std::uint32_t s) {
    return *shards_[s]->clock;
  }

 private:
  friend class ShardedSnapshot;  // release() unpins through shards_

  /// One committer's slot in a shard's group-commit queue.  Lives on the
  /// committer's stack; `done` and `error` are written by the batch leader
  /// and read by the owner, both under the shard's batcher mutex.
  struct GroupWaiter {
    ShardedTxn* txn;
    bool done = false;
    std::exception_ptr error{};
  };

  struct Shard {
    std::unique_ptr<sim::SimClock> clock;
    std::unique_ptr<nvm::NvmDevice> view;
    /// Declared before `cache`: the cache's cleaner thread locks this mutex,
    /// so it must outlive the cache during destruction.
    mutable std::mutex mu;
    std::unique_ptr<core::TincaCache> cache;
    /// Group-commit batcher (DESIGN.md §14).  `bmu` guards the queue and
    /// the leader flag; waiters sleep on `bcv` until the leader marks them
    /// done.  Never held while `mu` is being acquired with waiters blocked —
    /// the leader drops it around every cache call.
    std::mutex bmu;
    std::condition_variable bcv;
    std::deque<GroupWaiter*> queue;
    bool leader_active = false;
  };

  ShardedTinca(nvm::NvmDevice& nvm, blockdev::BlockDevice& disk,
               ShardedConfig cfg, bool do_format);

  /// The leader/follower batched commit path for a single-shard transaction
  /// (cfg.group_commit on).  Blocks until the caller's transaction is
  /// durable or rethrows the batch's failure.
  void commit_grouped(std::uint32_t sid, ShardedTxn& txn);

  /// Per-shard member portions of a cross-shard commit: shard id → the
  /// member transactions contributing there, each with its block list for
  /// that shard (ascending shard order, hence lock order).
  using XShardGroups =
      std::map<std::uint32_t,
               std::vector<std::pair<ShardedTxn*, std::vector<std::uint64_t>>>>;

  /// Atomic cross-shard commit (DESIGN.md §15): one anchored batch per
  /// involved shard, one commit-directory record, ONE fence.  `groups` must
  /// span at least two shards; `member_count` is the number of member
  /// transactions (recorded in the commit record).
  void commit_across_shards(const XShardGroups& groups,
                            std::uint64_t member_count);

  /// Allocate a free commit-directory slot and a fresh nonzero commit id.
  /// Retires slots whose anchored batches every participant's durable hint
  /// has passed; when none is retirable, forces hint syncs on the blocking
  /// shards (dir_mu_ dropped first — shard mutexes are only ever taken as
  /// leaves).  Called holding NO shard locks.
  std::uint64_t dir_acquire_slot(std::uint32_t& cid_out);

  blockdev::LockedBlockDevice disk_;
  ShardedConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Cross-stream commit directory state (DESIGN.md §15).  The directory
  // region lives in shard 0's superblock; this dedicated view (own clock and
  // op counters, shared media and injector) touches ONLY the directory
  // lines, which shard 0's cache never writes after format — so dir stores
  // under dir_mu_ never race shard 0's own commits.
  std::unique_ptr<sim::SimClock> dir_clock_;
  std::unique_ptr<nvm::NvmDevice> dir_view_;
  std::uint64_t dir_epoch_ = 0;  ///< shard 0's format epoch (record salt)
  mutable std::mutex dir_mu_;    ///< guards the slot table + id counter
  std::uint32_t next_commit_id_ = 1;
  /// What blocks a slot's reuse: recovery stops scanning an anchored batch
  /// only once its stream's durable hint passed the batch's end.
  struct DirDep {
    std::uint32_t shard;
    std::uint32_t stream;
    std::uint64_t end;  ///< ring index one past the batch's seal record
  };
  struct DirSlot {
    bool used = false;
    std::vector<DirDep> deps;
  };
  std::array<DirSlot, core::Layout::kDirSlots> dir_slots_;
  /// Seqlock over the cross-shard publish window: odd while a cross-stream
  /// commit is publishing its per-shard epoch bumps, so open_snapshot()
  /// never pins a cut that splits an atomic transaction.
  std::atomic<std::uint64_t> xshard_seq_{0};

  obs::Tracer trace_{"shard."};  ///< wall-clock tracer (many threads)
  obs::Tracer::Site* ts_commit_ = trace_.site("commit");
  obs::Tracer::Site* ts_lock_wait_ = trace_.site("lock_wait");
  obs::Tracer::Site* ts_publish_ = trace_.site("publish");
};

}  // namespace tinca::shard
