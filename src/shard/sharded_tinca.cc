#include "shard/sharded_tinca.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_set>

#include "common/expect.h"
#include "obs/metrics.h"
#include "tinca/commit_directory.h"

namespace tinca::shard {

// ---------------------------------------------------------------------------
// ShardedTxn
// ---------------------------------------------------------------------------

void ShardedTxn::add(std::uint64_t disk_blkno,
                     std::span<const std::byte> data) {
  TINCA_EXPECT(open_, "add to a closed transaction");
  TINCA_EXPECT(data.size() == core::kBlockSize, "transaction blocks are 4 KB");
  auto [it, inserted] = blocks_.try_emplace(disk_blkno);
  if (inserted) order_.push_back(disk_blkno);
  it->second.assign(data.begin(), data.end());
}

// ---------------------------------------------------------------------------
// Construction / format / recovery
// ---------------------------------------------------------------------------

ShardedTinca::ShardedTinca(nvm::NvmDevice& nvm, blockdev::BlockDevice& disk,
                           ShardedConfig cfg, bool do_format)
    : disk_(disk), cfg_(cfg) {
  TINCA_EXPECT(cfg.num_shards >= 1, "at least one shard required");
  // The cross-stream commit record names participants as (shard, stream)
  // bits of one 64-bit mask (DESIGN.md §15).
  TINCA_EXPECT(static_cast<std::uint64_t>(cfg.num_shards) *
                       std::max(1u, cfg.shard.num_streams) <=
                   64,
               "shards × streams must fit the 64-bit commit-record mask");
  // Equal 4 KB-aligned partitions; the tail remainder (< one partition) is
  // left unused.  Geometry is a pure function of (device size, num_shards),
  // so recovery reconstructs identical views without any extra metadata —
  // each shard's own superblock then validates its layout.
  const std::uint64_t part =
      nvm.size() / cfg.num_shards / core::kBlockSize * core::kBlockSize;
  TINCA_EXPECT(part > 0, "NVM device too small for this many shards");

  // Shared pacing budget: one Pacer for all shards' cleaners, each step
  // granting a 1/num_shards slice of the global batch budget (DESIGN.md §11).
  if (cfg_.shard.cleaner.mode != cleaner::CleanerMode::kDisabled &&
      cfg_.shard.cleaner.pacer == nullptr) {
    cfg_.shard.cleaner.pacer = std::make_shared<cleaner::Pacer>(
        static_cast<std::int64_t>(cfg_.shard.cleaner.max_batch_blocks));
    cfg_.shard.cleaner.pacer_grant_per_step =
        std::max(1u, cfg_.shard.cleaner.max_batch_blocks / cfg.num_shards);
  }

  shards_.reserve(cfg.num_shards);
  for (std::uint32_t s = 0; s < cfg.num_shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->clock = std::make_unique<sim::SimClock>();
    sh->view = std::make_unique<nvm::NvmDevice>(
        nvm, static_cast<std::uint64_t>(s) * part, part, *sh->clock);
    core::TincaConfig shard_cfg = cfg_.shard;
    shard_cfg.trace_tid = static_cast<int>(s);  // own Chrome track per shard
    sh->cache = do_format
                    ? core::TincaCache::format(*sh->view, disk_, shard_cfg)
                    : core::TincaCache::mount_for_recovery(*sh->view, disk_,
                                                           shard_cfg);
    shards_.push_back(std::move(sh));
  }

  if (!do_format) {
    // Coordinated crash recovery (DESIGN.md §15).  A shard recovering alone
    // cannot adjudicate an anchored batch — the commit record lives in
    // shard 0's directory and names OTHER shards' batches — so recovery is
    // three-phase across the set: scan every shard (no mutation), decide
    // which cross-stream commit ids are effective globally, then apply.
    std::vector<core::TincaCache::RecoveryScan> scans;
    scans.reserve(shards_.size());
    for (auto& sh : shards_) scans.push_back(sh->cache->recovery_scan());

    // Read the directory under the PRE-recovery epoch: records were salted
    // with the epoch in force when they were written, and recovery_apply
    // bumps it.
    const std::uint64_t pre_epoch =
        shards_[0]->view->load8(core::Layout::kFormatEpochOff);
    const std::uint32_t streams = shards_[0]->cache->num_streams();
    std::unordered_set<std::uint32_t> effective;
    for (const core::CommitRecord& rec :
         core::CommitDirectory::scan(*shards_[0]->view, pre_epoch)) {
      // A durable record proves every participant's batch is durable: the
      // record is staged strictly AFTER every participant's flush pass, and
      // a flush is the simulated media's durability point.  So the record's
      // presence alone makes the commit id effective.  A participant whose
      // scan window no longer contains the id is equally fine — its durable
      // hint only ever advances past durably-placed batches.  The one check
      // kept is defensive: a participant whose NEWEST batch carries this id
      // but is not fully placed contradicts the protocol order, and the
      // commit is withheld rather than half-applied.
      bool ok = true;
      for (std::uint32_t bit = 0; bit < 64 && ok; ++bit) {
        if ((rec.stream_mask >> bit & 1) == 0) continue;
        const std::uint32_t sid = bit / streams;
        if (sid >= shards_.size()) {
          ok = false;
          break;
        }
        for (const auto& ab : scans[sid].anchored) {
          if (ab.commit_id != rec.commit_id) continue;
          ok = !ab.is_last || ab.placed;
          break;
        }
      }
      if (ok) effective.insert(static_cast<std::uint32_t>(rec.commit_id));
    }

    for (auto& sh : shards_) sh->cache->recovery_apply(effective);
  }

  // Dedicated directory view + clock (offsets within shard 0's partition).
  dir_clock_ = std::make_unique<sim::SimClock>();
  dir_view_ = std::make_unique<nvm::NvmDevice>(
      nvm, 0, core::Layout::kSuperblockBytes, *dir_clock_);
  dir_epoch_ = dir_view_->load8(core::Layout::kFormatEpochOff);
}

std::unique_ptr<ShardedTinca> ShardedTinca::format(nvm::NvmDevice& nvm,
                                                   blockdev::BlockDevice& disk,
                                                   ShardedConfig cfg) {
  return std::unique_ptr<ShardedTinca>(
      new ShardedTinca(nvm, disk, cfg, /*do_format=*/true));
}

std::unique_ptr<ShardedTinca> ShardedTinca::recover(nvm::NvmDevice& nvm,
                                                    blockdev::BlockDevice& disk,
                                                    ShardedConfig cfg) {
  return std::unique_ptr<ShardedTinca>(
      new ShardedTinca(nvm, disk, cfg, /*do_format=*/false));
}

ShardedTinca::~ShardedTinca() { stop_cleaner_threads(); }

// ---------------------------------------------------------------------------
// Background cleaners
// ---------------------------------------------------------------------------

void ShardedTinca::step_cleaners() {
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    sh->cache->cleaner_step();
  }
}

void ShardedTinca::start_cleaner_threads() {
  for (auto& sh : shards_)
    if (sh->cache->cleaner() != nullptr)
      sh->cache->cleaner()->start_thread(&sh->mu);
}

void ShardedTinca::stop_cleaner_threads() {
  for (auto& sh : shards_)
    if (sh->cache->cleaner() != nullptr) sh->cache->cleaner()->stop_thread();
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

std::uint32_t ShardedTinca::shard_of(std::uint64_t disk_blkno) const {
  // SplitMix64 finalizer: avalanches every input bit so that sequential disk
  // block numbers (the common allocation pattern) spread across shards
  // instead of striding.
  std::uint64_t x = disk_blkno + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x % shards_.size());
}

// ---------------------------------------------------------------------------
// Transactional primitives
// ---------------------------------------------------------------------------

void ShardedTinca::commit(ShardedTxn& txn) {
  TINCA_EXPECT(txn.open_, "commit of a closed transaction");
  if (txn.order_.empty()) {
    txn.open_ = false;
    return;
  }

  // With the batcher enabled, a single-shard transaction — the common case —
  // joins its home shard's group-commit queue instead of taking the shard
  // lock directly; concurrent committers then share one ring append, one
  // flush pass and one fence.  Cross-shard transactions are rare and keep
  // the legacy ascending-lock path below.
  if (cfg_.group_commit) {
    const std::uint32_t sid = shard_of(txn.order_.front());
    bool single = true;
    for (std::uint64_t blkno : txn.order_)
      if (shard_of(blkno) != sid) {
        single = false;
        break;
      }
    if (single) {
      commit_grouped(sid, txn);
      return;
    }
  }

  // Group the staged blocks by home shard, preserving staging order inside
  // each group.  std::map iterates shards in ascending id — both the lock
  // acquisition order and the publication order below, so any two
  // transactions contending on several shards acquire them in the same
  // global total order (no deadlocks).
  TINCA_TRACE_SPAN(trace_, ts_commit_);
  XShardGroups groups;
  {
    std::map<std::uint32_t, std::vector<std::uint64_t>> by_shard;
    for (std::uint64_t blkno : txn.order_)
      by_shard[shard_of(blkno)].push_back(blkno);
    for (auto& [sid, blocks] : by_shard)
      groups[sid].emplace_back(&txn, std::move(blocks));
  }

  if (groups.size() == 1) {
    // Single home shard: one lock, the paper's exact protocol.
    const std::uint32_t sid = groups.begin()->first;
    Shard& sh = *shards_[sid];
    std::unique_lock<std::mutex> lock(sh.mu, std::defer_lock);
    {
      // Lock-wait span: under contention this is where commit time goes,
      // and it is invisible to the shards' virtual clocks (lock waits
      // charge no device time) — hence the wall-clock tracer.
      TINCA_TRACE_SPAN(trace_, ts_lock_wait_);
      lock.lock();
    }
    TINCA_TRACE_SPAN(trace_, ts_publish_);
    core::Transaction sub = sh.cache->tinca_init_txn();
    for (std::uint64_t blkno : groups.begin()->second.front().second)
      sub.add(blkno, txn.blocks_[blkno]);
    sh.cache->tinca_commit(sub);
  } else {
    // Cross-shard: atomic through one commit-directory record (§15).
    commit_across_shards(groups, /*member_count=*/1);
  }

  txn.open_ = false;
  txn.blocks_.clear();
  txn.order_.clear();
}

void ShardedTinca::commit_grouped(std::uint32_t sid, ShardedTxn& txn) {
  TINCA_TRACE_SPAN(trace_, ts_commit_);
  Shard& sh = *shards_[sid];
  GroupWaiter me{&txn};
  std::unique_lock<std::mutex> bl(sh.bmu);
  sh.queue.push_back(&me);

  if (sh.leader_active) {
    // Follower: a leader is already draining this shard's queue and will
    // commit our transaction inside one of its batches.  Sleep until it
    // posts the verdict; the batch is all-or-nothing, so a failure anywhere
    // in our batch is our failure too.
    sh.bcv.wait(bl, [&me] { return me.done; });
    if (me.error) std::rethrow_exception(me.error);
    return;
  }

  // Leader election is implicit: the first committer to find no active
  // leader becomes one.  Linger briefly so concurrent committers can pile
  // into the batch (closing early once the queue hits capacity), then drain
  // the queue — including followers that arrive while we are committing —
  // before stepping down.
  sh.leader_active = true;
  if (cfg_.group_linger_us > 0 && cfg_.group_max_batch > 1) {
    sh.bcv.wait_for(bl, std::chrono::microseconds(cfg_.group_linger_us),
                    [&] { return sh.queue.size() >= cfg_.group_max_batch; });
  }

  while (!sh.queue.empty()) {
    // Close a batch: longest queue prefix that fits the batch-size cap and
    // the shard's per-commit block budget.  The first member always joins
    // even if oversized — tinca_commit's own contract check rejects it.
    std::vector<GroupWaiter*> batch;
    std::uint64_t blocks = 0;
    const std::uint64_t cap = sh.cache->max_txn_blocks();
    while (!sh.queue.empty() && batch.size() < cfg_.group_max_batch) {
      GroupWaiter* w = sh.queue.front();
      const std::uint64_t n = w->txn->order_.size();
      if (!batch.empty() && blocks + n > cap) break;
      sh.queue.pop_front();
      batch.push_back(w);
      blocks += n;
    }

    // Commit the batch outside the batcher mutex so late arrivals can keep
    // enqueueing (they will see leader_active and wait).
    bl.unlock();
    std::exception_ptr err;
    try {
      std::unique_lock<std::mutex> lock(sh.mu, std::defer_lock);
      {
        TINCA_TRACE_SPAN(trace_, ts_lock_wait_);
        lock.lock();
      }
      TINCA_TRACE_SPAN(trace_, ts_publish_);
      std::vector<core::Transaction> subs;
      subs.reserve(batch.size());
      for (GroupWaiter* w : batch) {
        subs.emplace_back(sh.cache->tinca_init_txn());
        for (std::uint64_t blkno : w->txn->order_)
          subs.back().add(blkno, w->txn->blocks_[blkno]);
      }
      std::vector<core::Transaction*> ptrs;
      ptrs.reserve(subs.size());
      for (core::Transaction& t : subs) ptrs.push_back(&t);
      sh.cache->commit_group(ptrs);
    } catch (...) {
      err = std::current_exception();
    }
    bl.lock();
    for (GroupWaiter* w : batch) {
      w->txn->open_ = false;
      w->txn->blocks_.clear();
      w->txn->order_.clear();
      w->error = err;
      w->done = true;
    }
    sh.bcv.notify_all();
  }

  // Step down while still holding bmu: any committer that enqueued before
  // this point was drained above; any that arrives after sees no leader and
  // becomes one.  No window where the queue can strand.
  sh.leader_active = false;
  bl.unlock();
  if (me.error) std::rethrow_exception(me.error);
}

void ShardedTinca::commit_batch(std::span<ShardedTxn* const> txns) {
  for (ShardedTxn* t : txns)
    TINCA_EXPECT(t->open_, "commit of a closed transaction");
  TINCA_TRACE_SPAN(trace_, ts_commit_);

  // Split every member per home shard, then regroup by shard preserving
  // member order — each shard commits its members' portions as one batch,
  // in the same ascending shard order the locks are taken in.
  XShardGroups groups;
  for (ShardedTxn* t : txns) {
    std::map<std::uint32_t, std::vector<std::uint64_t>> mine;
    for (std::uint64_t blkno : t->order_)
      mine[shard_of(blkno)].push_back(blkno);
    for (auto& [sid, blocks] : mine)
      groups[sid].emplace_back(t, std::move(blocks));
  }

  if (groups.size() > 1) {
    // The batch spans shards: commit every shard's portion atomically
    // through one cross-stream commit record (§15).
    commit_across_shards(groups, txns.size());
  } else if (!groups.empty()) {
    auto& [sid, parts] = *groups.begin();
    Shard& sh = *shards_[sid];
    std::unique_lock<std::mutex> lock(sh.mu, std::defer_lock);
    {
      TINCA_TRACE_SPAN(trace_, ts_lock_wait_);
      lock.lock();
    }
    TINCA_TRACE_SPAN(trace_, ts_publish_);
    std::vector<core::Transaction> subs;
    subs.reserve(parts.size());
    for (auto& [t, blocks] : parts) {
      subs.emplace_back(sh.cache->tinca_init_txn());
      for (std::uint64_t blkno : blocks)
        subs.back().add(blkno, t->blocks_[blkno]);
    }
    std::vector<core::Transaction*> ptrs;
    ptrs.reserve(subs.size());
    for (core::Transaction& t : subs) ptrs.push_back(&t);
    sh.cache->commit_group(ptrs);
  }

  for (ShardedTxn* t : txns) {
    t->open_ = false;
    t->blocks_.clear();
    t->order_.clear();
  }
}

std::uint64_t ShardedTinca::dir_acquire_slot(std::uint32_t& cid_out) {
  for (;;) {
    std::vector<DirDep> blocking;
    {
      std::lock_guard<std::mutex> lk(dir_mu_);
      // Retire every slot whose anchored batches all participants' durable
      // hints have passed: recovery's scan windows no longer reach those
      // batches, so the records are unreachable and the slots reusable.
      for (DirSlot& slot : dir_slots_) {
        if (!slot.used) continue;
        bool retirable = true;
        for (const DirDep& d : slot.deps) {
          if (shards_[d.shard]->cache->stream_ring(d.stream).durable_hint() <
              d.end) {
            retirable = false;
            break;
          }
        }
        if (retirable) {
          slot.used = false;
          slot.deps.clear();
        }
      }
      for (std::uint64_t i = 0; i < dir_slots_.size(); ++i) {
        if (!dir_slots_[i].used) {
          dir_slots_[i].used = true;
          cid_out = next_commit_id_++;
          TINCA_ENSURE(cid_out != 0, "commit-id space exhausted");
          return i;
        }
      }
      // Every slot is pinned by a still-scannable batch.  Collect the
      // blockers, then force their hints forward OUTSIDE dir_mu_ — each
      // sync takes one shard mutex as a leaf, so no lock cycle.
      for (const DirSlot& slot : dir_slots_)
        blocking.insert(blocking.end(), slot.deps.begin(), slot.deps.end());
    }
    std::unordered_set<std::uint32_t> synced;
    for (const DirDep& d : blocking) {
      if (!synced.insert(d.shard).second) continue;
      Shard& sh = *shards_[d.shard];
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.cache->sync_commit_hints();
    }
  }
}

void ShardedTinca::commit_across_shards(const XShardGroups& groups,
                                        std::uint64_t member_count) {
  TINCA_EXPECT(groups.size() >= 2, "cross-shard commit needs two shards");

  // Directory slot + commit id first, while holding NO shard locks — the
  // slow path inside (forcing hint syncs) takes shard mutexes itself.
  std::uint32_t cid = 0;
  const std::uint64_t slot = dir_acquire_slot(cid);

  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(groups.size());
  {
    TINCA_TRACE_SPAN(trace_, ts_lock_wait_);
    for (auto& [sid, parts] : groups) locks.emplace_back(shards_[sid]->mu);
  }

  TINCA_TRACE_SPAN(trace_, ts_publish_);
  const std::uint32_t streams = shards_[0]->cache->num_streams();

  // Phase 1 — stage: one anchored batch per shard, each on one of that
  // shard's commit streams.  The sub-transactions must outlive publish
  // (which closes them), hence the per-shard store.
  std::uint64_t mask = 0;
  std::vector<DirDep> deps;
  deps.reserve(groups.size());
  std::vector<std::vector<core::Transaction>> subs_store;
  subs_store.reserve(groups.size());
  for (auto& [sid, parts] : groups) {
    core::TincaCache& cache = *shards_[sid]->cache;
    std::vector<core::Transaction> subs;
    subs.reserve(parts.size());
    for (const auto& [t, blocks] : parts) {
      subs.emplace_back(cache.tinca_init_txn());
      for (std::uint64_t blkno : blocks)
        subs.back().add(blkno, t->blocks_.at(blkno));
    }
    std::vector<core::Transaction*> ptrs;
    ptrs.reserve(subs.size());
    for (core::Transaction& t : subs) ptrs.push_back(&t);
    const bool staged = cache.batch_stage(ptrs, cid);
    TINCA_ENSURE(staged, "cross-shard member with no blocks on its shard");
    mask |= 1ull << (static_cast<std::uint64_t>(sid) * streams +
                     cache.batch_stream());
    deps.push_back({sid, cache.batch_stream(), cache.batch_end()});
    subs_store.push_back(std::move(subs));
  }

  // Phase 2 — flush every participant's batch (no fences yet).
  for (auto& [sid, parts] : groups) shards_[sid]->cache->batch_flush();

  // Phase 3 — the commit record: ONE 64 B line naming every participating
  // (shard, stream), flushed in the same pass, then ONE sfence for the
  // whole transaction.  The record's flush is the atomic commit point: a
  // crash before it rolls every shard back, after it commits every shard.
  const core::CommitRecord rec{cid, mask, member_count};
  const auto [rec_off, rec_len] =
      core::CommitDirectory::stage(*dir_view_, slot, rec, dir_epoch_);
  dir_view_->injector.point();  // CP: batches flushed, record staged only
  if (!cfg_.sabotage_skip_commit_record_flush)
    dir_view_->clflush(rec_off, rec_len);
  dir_view_->injector.point();  // CP: record durable, nothing published
  shards_[groups.begin()->first]->view->sfence();
  shards_[groups.begin()->first]->cache->note_shared_fence();

  // Phase 4 — publish all participants inside the seqlock's odd window, so
  // open_snapshot() can never pin a cut between two shards' epoch bumps.
  xshard_seq_.fetch_add(1, std::memory_order_acq_rel);
  for (auto& [sid, parts] : groups) shards_[sid]->cache->batch_publish();
  xshard_seq_.fetch_add(1, std::memory_order_release);

  // Register the slot's reuse gate: the record must stay until every
  // participant's durable hint passes its anchored batch.
  {
    std::lock_guard<std::mutex> lk(dir_mu_);
    dir_slots_[slot].deps = std::move(deps);
  }
}

void ShardedTinca::abort(ShardedTxn& txn) {
  TINCA_EXPECT(txn.open_, "abort of a closed transaction");
  txn.open_ = false;
  txn.blocks_.clear();
  txn.order_.clear();
}

// ---------------------------------------------------------------------------
// Cached block I/O
// ---------------------------------------------------------------------------

void ShardedTinca::read_block(std::uint64_t disk_blkno,
                              std::span<std::byte> dst) {
  Shard& sh = *shards_[shard_of(disk_blkno)];
  // Lock-free fast path: pin the shard's commit epoch, resolve through the
  // version chains, copy, unpin — no mutex, no clock, no LRU traffic.  The
  // pin covers the copy, so a concurrent commit/reclaim cannot reuse the
  // NVM block mid-read.
  const core::SnapshotPin pin = sh.cache->snapshot_pin();
  if (pin.valid()) {
    const bool hit = sh.cache->snapshot_try_read(pin, disk_blkno, dst);
    sh.cache->snapshot_unpin(pin);
    if (hit) return;
  }
  read_block_locked(disk_blkno, dst);
}

void ShardedTinca::read_block_locked(std::uint64_t disk_blkno,
                                     std::span<std::byte> dst) {
  Shard& sh = *shards_[shard_of(disk_blkno)];
  std::lock_guard<std::mutex> lock(sh.mu);
  sh.cache->read_block(disk_blkno, dst);
}

// ---------------------------------------------------------------------------
// Snapshot reads (MVCC, DESIGN.md §12)
// ---------------------------------------------------------------------------

void ShardedSnapshot::release() noexcept {
  if (!open_) return;
  for (std::uint32_t s = 0; s < pins_.size(); ++s)
    owner_->shards_[s]->cache->snapshot_unpin(pins_[s]);
  pins_.clear();
  open_ = false;
  owner_ = nullptr;
}

ShardedSnapshot ShardedTinca::open_snapshot() {
  ShardedSnapshot snap;
  snap.pins_.reserve(shards_.size());
  // Seqlock against the cross-shard publish window: retry whenever the pins
  // were taken while (or across) a cross-stream commit was publishing its
  // per-shard epoch bumps, so the snapshot can never hold shard A's epoch
  // from after an atomic transaction and shard B's from before it.
  for (;;) {
    const std::uint64_t seq = xshard_seq_.load(std::memory_order_acquire);
    if (seq & 1) {
      std::this_thread::yield();
      continue;
    }
    for (auto& sh : shards_) snap.pins_.push_back(sh->cache->snapshot_pin());
    if (xshard_seq_.load(std::memory_order_acquire) == seq) break;
    for (std::uint32_t s = 0; s < shards_.size(); ++s)
      shards_[s]->cache->snapshot_unpin(snap.pins_[s]);
    snap.pins_.clear();
  }
  snap.owner_ = this;
  snap.open_ = true;
  return snap;
}

void ShardedTinca::snapshot_read(const ShardedSnapshot& snap,
                                 std::uint64_t disk_blkno,
                                 std::span<std::byte> dst) {
  TINCA_EXPECT(snap.open_, "read against a closed snapshot");
  const std::uint32_t sid = shard_of(disk_blkno);
  const core::SnapshotPin& pin = snap.pins_[sid];
  if (pin.valid()) {
    // Chain hit or disk fallback — both lock-free (the shared disk is
    // behind LockedBlockDevice, and the defer rule keeps its content from
    // advancing past the pin).
    shards_[sid]->cache->snapshot_read(pin, disk_blkno, dst);
    return;
  }
  // Pin registry was full at open time: degrade to the locked path.  The
  // result is a current read, not a pinned one — same contract as a reader
  // that failed to start a snapshot at all.
  read_block_locked(disk_blkno, dst);
}

void ShardedTinca::close_snapshot(ShardedSnapshot& snap) {
  TINCA_EXPECT(snap.open_, "close of a closed snapshot");
  TINCA_EXPECT(snap.owner_ == this, "snapshot closed by a different cache");
  snap.release();
}

void ShardedTinca::write_block(std::uint64_t disk_blkno,
                               std::span<const std::byte> data) {
  ShardedTxn txn = init_txn();
  txn.add(disk_blkno, data);
  commit(txn);
}

void ShardedTinca::flush_dirty() {
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    sh->cache->flush_dirty();
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

bool ShardedTinca::cached(std::uint64_t disk_blkno) {
  Shard& sh = *shards_[shard_of(disk_blkno)];
  std::lock_guard<std::mutex> lock(sh.mu);
  return sh.cache->cached(disk_blkno);
}

bool ShardedTinca::dirty(std::uint64_t disk_blkno) {
  Shard& sh = *shards_[shard_of(disk_blkno)];
  std::lock_guard<std::mutex> lock(sh.mu);
  return sh.cache->dirty(disk_blkno);
}

std::uint64_t ShardedTinca::max_txn_blocks() const {
  std::uint64_t m = UINT64_MAX;
  for (const auto& sh : shards_)
    m = std::min(m, sh->cache->max_txn_blocks());
  return m;
}

core::TincaCacheStats ShardedTinca::aggregated_stats() const {
  core::TincaCacheStats agg;
  for (const auto& sh : shards_) {
    // A kThread cleaner mutates this shard's stats under its mutex.
    std::lock_guard<std::mutex> lock(sh->mu);
    const core::TincaCacheStats& s = sh->cache->stats();
    agg.txns_committed += s.txns_committed;
    agg.txns_aborted += s.txns_aborted;
    agg.blocks_committed += s.blocks_committed;
    agg.write_hits += s.write_hits;
    agg.write_misses += s.write_misses;
    agg.read_hits += s.read_hits;
    agg.read_misses += s.read_misses;
    agg.evictions += s.evictions;
    agg.dirty_writebacks += s.dirty_writebacks;
    agg.writethrough_writes += s.writethrough_writes;
    agg.role_switches += s.role_switches;
    agg.cow_writes += s.cow_writes;
    agg.background_cleanings += s.background_cleanings;
    agg.revoked_blocks += s.revoked_blocks;
    agg.dropped_clean_entries += s.dropped_clean_entries;
    agg.recovered_entries += s.recovered_entries;
    agg.io_retries += s.io_retries;
    agg.io_quarantined += s.io_quarantined;
    agg.io_degraded_writes += s.io_degraded_writes;
    agg.commit_fences += s.commit_fences;
    agg.commit_batches += s.commit_batches;
    agg.hint_syncs += s.hint_syncs;
    agg.group_merged_writes += s.group_merged_writes;
    agg.xstream_commits += s.xstream_commits;
    agg.blocks_per_txn.merge(s.blocks_per_txn);
    agg.commit_batch_size.merge(s.commit_batch_size);
  }
  return agg;
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

void ShardedTinca::enable_tracing(bool on) {
  trace_.enable(on);
  for (auto& sh : shards_) sh->cache->enable_tracing(on);
}

void ShardedTinca::attach_trace_sink(obs::TraceSink* sink) {
  trace_.attach_sink(sink);
  for (std::uint32_t s = 0; s < shards_.size(); ++s)
    shards_[s]->cache->attach_trace_sink(sink);
  if (sink != nullptr)
    for (std::uint32_t s = 0; s < shards_.size(); ++s)
      sink->set_track_name(obs::kVirtualPid, static_cast<int>(s),
                           "shard " + std::to_string(s));
}

void ShardedTinca::register_metrics(obs::MetricsRegistry& reg,
                                    const std::string& prefix) const {
  trace_.register_into(reg, prefix + "lat.");
  for (std::uint32_t s = 0; s < shards_.size(); ++s)
    shards_[s]->cache->register_metrics(
        reg, prefix + "shard" + std::to_string(s) + ".");
}

}  // namespace tinca::shard
