#include "blockdev/faulty_block_device.h"

#include <cstring>
#include <vector>

#include "common/expect.h"

namespace tinca::blockdev {

FaultyBlockDevice::FaultyBlockDevice(BlockDevice& inner, FaultConfig cfg,
                                     sim::SimClock* clock,
                                     nvm::CrashInjector* injector)
    : inner_(inner),
      cfg_(cfg),
      clock_(clock),
      injector_(injector),
      rng_(cfg.seed) {}

void FaultyBlockDevice::mark_bad(std::uint64_t blkno) {
  if (bad_.insert(blkno).second) ++faults_.bad_sectors;
}

void FaultyBlockDevice::maybe_spike() {
  if (cfg_.latency_spike_rate <= 0.0 || clock_ == nullptr) return;
  if (!rng_.chance(cfg_.latency_spike_rate)) return;
  clock_->advance(cfg_.latency_spike_ns);
  ++faults_.latency_spikes;
}

void FaultyBlockDevice::tear(std::uint64_t blkno,
                             std::span<const std::byte> src) {
  // Compose the half-applied block: the first half of the new data over the
  // old suffix, exactly what a 4 KB write interrupted mid-transfer leaves.
  std::vector<std::byte> torn(kBlockSize);
  inner_.read(blkno, torn);
  std::memcpy(torn.data(), src.data(), kBlockSize / 2);
  inner_.write(blkno, torn);
  ++faults_.torn_writes;
  throw nvm::CrashException();
}

IoStatus FaultyBlockDevice::read(std::uint64_t blkno,
                                 std::span<std::byte> dst) {
  TINCA_EXPECT(dst.size() == kBlockSize, "short read buffer");
  maybe_spike();
  if (forced_read_failures_ > 0) {
    --forced_read_failures_;
    ++faults_.transient_read_errors;
    return IoStatus::kTransient;
  }
  if (cfg_.transient_read_rate > 0.0 && rng_.chance(cfg_.transient_read_rate)) {
    ++faults_.transient_read_errors;
    return IoStatus::kTransient;
  }
  return inner_.read(blkno, dst);
}

IoStatus FaultyBlockDevice::write(std::uint64_t blkno,
                                  std::span<const std::byte> src) {
  TINCA_EXPECT(src.size() == kBlockSize, "short write buffer");
  maybe_spike();
  if (injector_ != nullptr && injector_->point_torn()) tear(blkno, src);
  if (forced_tear_countdown_ > 0 && --forced_tear_countdown_ == 0)
    tear(blkno, src);
  if (cfg_.torn_write_rate > 0.0 && rng_.chance(cfg_.torn_write_rate))
    tear(blkno, src);
  if (forced_write_failures_ > 0) {
    --forced_write_failures_;
    ++faults_.transient_write_errors;
    return IoStatus::kTransient;
  }
  if (bad_.contains(blkno)) {
    ++faults_.bad_sector_errors;
    return IoStatus::kBadSector;
  }
  if (cfg_.transient_write_rate > 0.0 &&
      rng_.chance(cfg_.transient_write_rate)) {
    ++faults_.transient_write_errors;
    return IoStatus::kTransient;
  }
  if (cfg_.bad_sector_rate > 0.0 && rng_.chance(cfg_.bad_sector_rate)) {
    // The defect grows under this write: the write itself is the discovery.
    bad_.insert(blkno);
    ++faults_.bad_sectors;
    ++faults_.bad_sector_errors;
    return IoStatus::kBadSector;
  }
  return inner_.write(blkno, src);
}

}  // namespace tinca::blockdev
