// I/O result type and retry policy for the block-device layer.
//
// The devices underneath a production cache are not perfect: reads and
// writes fail transiently (bus resets, controller timeouts) or permanently
// (grown media defects).  Every BlockDevice operation therefore returns an
// IoStatus, and the cache layers above translate it into policy — bounded
// retries with exponential backoff for transient errors, per-block
// quarantine and write-through degradation for permanent ones (DESIGN.md
// §9).  Statuses are deliberately not [[nodiscard]]: the in-memory devices
// cannot fail, and forcing every test call site to consume kOk would bury
// the paths that matter.
#pragma once

#include <cstdint>
#include <exception>
#include <string>

#include "common/sim_clock.h"

namespace tinca::blockdev {

/// Outcome of one block read or write.
enum class IoStatus : std::uint8_t {
  kOk = 0,         ///< the operation completed
  kTransient = 1,  ///< failed, but a retry may succeed (timeout, bus reset)
  kBadSector = 2,  ///< failed permanently: the target sector is bad
};

/// True iff `s` reports success.
[[nodiscard]] constexpr bool io_ok(IoStatus s) { return s == IoStatus::kOk; }

/// The worse of two statuses (kBadSector > kTransient > kOk) — used by
/// layers that perform several device operations per logical request and
/// report one status for the whole request.
[[nodiscard]] constexpr IoStatus worse(IoStatus a, IoStatus b) {
  return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b) ? a : b;
}

/// Retry policy for transient I/O errors: up to `max_retries` re-issues,
/// waiting backoff_ns, then backoff_ns * backoff_mult, ... before each.
/// The waits are charged to the layer's SimClock, so retry storms are
/// visible in every latency result.
struct RetryPolicy {
  std::uint32_t max_retries = 4;
  std::uint64_t backoff_ns = 100'000;  ///< first-retry wait (100 µs)
  std::uint32_t backoff_mult = 4;      ///< exponential backoff factor
};

/// Thrown when a read that has no other source of the data fails past the
/// retry budget (a cache read miss whose disk read keeps erroring).  Writes
/// never throw: the cache layers keep the NVM copy and degrade instead.
class IoError : public std::exception {
 public:
  IoError(const std::string& context, std::uint64_t blkno, IoStatus status)
      : blkno_(blkno), status_(status) {
    what_ = context + " (block " + std::to_string(blkno) + ")";
  }

  [[nodiscard]] const char* what() const noexcept override {
    return what_.c_str();
  }
  [[nodiscard]] std::uint64_t blkno() const { return blkno_; }
  [[nodiscard]] IoStatus status() const { return status_; }

 private:
  std::string what_;
  std::uint64_t blkno_;
  IoStatus status_;
};

/// Result of a retried operation: the final status plus how many retries
/// were spent getting there.
struct RetryResult {
  IoStatus status = IoStatus::kOk;
  std::uint32_t retries = 0;
};

/// Run `io` (a callable returning IoStatus), retrying per `policy` while it
/// reports kTransient.  Backoff waits are charged to `clock` when non-null.
/// Layers with trace instrumentation on the retry path implement the same
/// loop inline; this helper serves tests and uninstrumented callers.
template <typename Fn>
RetryResult with_retries(const RetryPolicy& policy, sim::SimClock* clock,
                         Fn&& io) {
  RetryResult r;
  r.status = io();
  std::uint64_t wait = policy.backoff_ns;
  while (r.status == IoStatus::kTransient && r.retries < policy.max_retries) {
    if (clock != nullptr) clock->advance(wait);
    wait *= policy.backoff_mult == 0 ? 1 : policy.backoff_mult;
    ++r.retries;
    r.status = io();
  }
  return r;
}

}  // namespace tinca::blockdev
