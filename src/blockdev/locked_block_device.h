// Mutex-serialized adapter over any BlockDevice.
//
// MemBlockDevice and LatencyBlockDevice are single-threaded by design (hash
// map inserts, shared latency clock).  The sharded Tinca front-end drives one
// backing disk from several committing threads at once — writebacks and read
// misses from different shards target disjoint disk blocks, but the device's
// internal bookkeeping still needs serialization.  This adapter provides it
// at the device boundary so the inner models stay simple.
//
// Disk I/O is off the commit hot path in write-back mode (only evictions,
// cleaning and misses reach the disk), so the single mutex is not a
// scalability concern; shards never hold another shard's lock while calling
// in here, so lock ordering stays acyclic (shard mutex → disk mutex).
#pragma once

#include <mutex>

#include "blockdev/block_device.h"

namespace tinca::blockdev {

/// Thread-safe wrapper: serializes every read/write on one mutex.
class LockedBlockDevice final : public BlockDevice {
 public:
  explicit LockedBlockDevice(BlockDevice& inner) : inner_(inner) {}

  [[nodiscard]] std::uint64_t block_count() const override {
    return inner_.block_count();
  }

  IoStatus read(std::uint64_t blkno, std::span<std::byte> dst) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_.read(blkno, dst);
  }

  IoStatus write(std::uint64_t blkno, std::span<const std::byte> src) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_.write(blkno, src);
  }

  /// Counters of the wrapped device.  Only stable once concurrent users have
  /// quiesced (joined); the reference aliases the inner device's live stats.
  [[nodiscard]] const BlockStats& stats() const override {
    return inner_.stats();
  }

 private:
  BlockDevice& inner_;
  std::mutex mu_;
};

}  // namespace tinca::blockdev
