// Latency-modelled block device decorator.
//
// Wraps any BlockDevice and charges a DiskProfile's costs to a SimClock:
// per-request overhead, per-block media time, and — for HDD — a positioning
// penalty whenever the access is not sequential to the previous one.  This
// reproduces the SSD-vs-HDD sensitivity study of §5.4.1, where Tinca's
// reduction in disk writes matters *more* on the slower disk.
#pragma once

#include "blockdev/block_device.h"
#include "common/latency.h"
#include "common/sim_clock.h"

namespace tinca::blockdev {

/// How writes are charged.
enum class WritePolicy : std::uint8_t {
  kSync,   ///< the caller waits for the media (simple, test-friendly)
  kAsync,  ///< writes queue behind the device (write-back cleaners run in
           ///< background threads); the caller only stalls when the queue
           ///< backlog exceeds a bound.  Reads bypass the queue (NCQ-style
           ///< priority) and are always charged synchronously.
};

/// Decorator charging DiskProfile latencies for each 4 KB access.
class LatencyBlockDevice final : public BlockDevice {
 public:
  LatencyBlockDevice(BlockDevice& inner, DiskProfile profile,
                     sim::SimClock& clock,
                     WritePolicy policy = WritePolicy::kSync,
                     sim::Ns max_queue_lag = 20 * sim::kMsec)
      : inner_(inner),
        profile_(std::move(profile)),
        clock_(clock),
        policy_(policy),
        max_queue_lag_(max_queue_lag) {}

  [[nodiscard]] std::uint64_t block_count() const override {
    return inner_.block_count();
  }

  IoStatus read(std::uint64_t blkno, std::span<std::byte> dst) override {
    charge(blkno, profile_.read_block_ns);
    const IoStatus st = inner_.read(blkno, dst);
    stats_ = inner_.stats();
    stats_.seeks = seeks_;
    return st;
  }

  IoStatus write(std::uint64_t blkno, std::span<const std::byte> src) override {
    if (policy_ == WritePolicy::kSync) {
      charge(blkno, profile_.write_block_ns);
    } else {
      // Submit cost only; media time accrues on the device's own timeline,
      // divided by the device's internal parallelism (queued commands keep
      // all channels busy).
      clock_.advance(2 * sim::kUsec);
      sim::Ns cost = profile_.request_overhead_ns + profile_.write_block_ns;
      if (profile_.seek_ns != 0 && blkno != next_sequential_) {
        cost += profile_.seek_ns;
        ++seeks_;
      }
      next_sequential_ = blkno + 1;
      cost /= profile_.internal_parallelism == 0 ? 1 : profile_.internal_parallelism;
      const sim::Ns now = clock_.now();
      queue_busy_ = (queue_busy_ > now ? queue_busy_ : now) + cost;
      // Bounded backlog: a saturated device throttles its producers.
      if (queue_busy_ > now + max_queue_lag_)
        clock_.advance(queue_busy_ - (now + max_queue_lag_));
    }
    const IoStatus st = inner_.write(blkno, src);
    stats_ = inner_.stats();
    stats_.seeks = seeks_;
    return st;
  }

  /// Time at which all queued writes will have reached the media.
  [[nodiscard]] sim::Ns queue_drained_at() const { return queue_busy_; }

  [[nodiscard]] const BlockStats& stats() const override { return stats_; }

  [[nodiscard]] const DiskProfile& profile() const { return profile_; }

 private:
  void charge(std::uint64_t blkno, sim::Ns media_ns) {
    sim::Ns cost = profile_.request_overhead_ns + media_ns;
    if (profile_.seek_ns != 0 && blkno != next_sequential_) {
      cost += profile_.seek_ns;
      ++seeks_;
    }
    next_sequential_ = blkno + 1;
    clock_.advance(cost);
  }

  BlockDevice& inner_;
  DiskProfile profile_;
  sim::SimClock& clock_;
  WritePolicy policy_;
  sim::Ns max_queue_lag_;
  sim::Ns queue_busy_ = 0;
  std::uint64_t next_sequential_ = UINT64_MAX;
  std::uint64_t seeks_ = 0;
  BlockStats stats_;
};

}  // namespace tinca::blockdev
