// Block-device abstraction for the backing disk (SSD or HDD).
//
// The paper places the NVM cache above a 128 GB SATA SSD by default and an
// HDD for §5.4.1.  Both Tinca and the Classic baseline eventually flush
// replaced dirty blocks down to this layer; the benches report "disk blocks
// written per operation" from its counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "blockdev/io_status.h"

namespace tinca::blockdev {

/// Fixed 4 KB block size, matching the paper's cache unit (§4.2).
constexpr std::size_t kBlockSize = 4096;

/// I/O counters for one block device.
struct BlockStats {
  std::uint64_t blocks_written = 0;
  std::uint64_t blocks_read = 0;
  std::uint64_t seeks = 0;  ///< non-sequential accesses (HDD positioning)

  BlockStats operator-(const BlockStats& rhs) const {
    return BlockStats{blocks_written - rhs.blocks_written,
                      blocks_read - rhs.blocks_read, seeks - rhs.seeks};
  }
};

/// Abstract block device: 4 KB reads and writes addressed by block number.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Capacity in blocks.
  [[nodiscard]] virtual std::uint64_t block_count() const = 0;

  /// Read block `blkno` into `dst` (exactly kBlockSize bytes).  On a
  /// non-kOk result `dst` contents are unspecified.
  virtual IoStatus read(std::uint64_t blkno, std::span<std::byte> dst) = 0;

  /// Write `src` (exactly kBlockSize bytes) to block `blkno`.  On a non-kOk
  /// result the block retains its previous contents.
  virtual IoStatus write(std::uint64_t blkno, std::span<const std::byte> src) = 0;

  /// I/O counters.
  [[nodiscard]] virtual const BlockStats& stats() const = 0;
};

}  // namespace tinca::blockdev
