// RAM-backed sparse block store.
//
// Backing "disks" in the experiments are hundreds of thousands of blocks of
// which only the written subset matters; a sparse map keeps memory bounded
// by the touched working set.  Unwritten blocks read as zeros, matching a
// freshly trimmed device.
#pragma once

#include <array>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "blockdev/block_device.h"
#include "common/expect.h"

namespace tinca::blockdev {

/// In-memory sparse block device; no latency model (wrap with
/// LatencyBlockDevice for timed experiments).
class MemBlockDevice final : public BlockDevice {
 public:
  explicit MemBlockDevice(std::uint64_t block_count)
      : block_count_(block_count) {}

  [[nodiscard]] std::uint64_t block_count() const override {
    return block_count_;
  }

  IoStatus read(std::uint64_t blkno, std::span<std::byte> dst) override {
    TINCA_EXPECT(blkno < block_count_, "read beyond device");
    TINCA_EXPECT(dst.size() == kBlockSize, "short read buffer");
    auto it = blocks_.find(blkno);
    if (it == blocks_.end()) {
      std::memset(dst.data(), 0, kBlockSize);
    } else {
      std::memcpy(dst.data(), it->second->data(), kBlockSize);
    }
    ++stats_.blocks_read;
    return IoStatus::kOk;
  }

  IoStatus write(std::uint64_t blkno, std::span<const std::byte> src) override {
    TINCA_EXPECT(blkno < block_count_, "write beyond device");
    TINCA_EXPECT(src.size() == kBlockSize, "short write buffer");
    auto& slot = blocks_[blkno];
    if (!slot) slot = std::make_unique<Block>();
    std::memcpy(slot->data(), src.data(), kBlockSize);
    ++stats_.blocks_written;
    return IoStatus::kOk;
  }

  [[nodiscard]] const BlockStats& stats() const override { return stats_; }

  /// Number of materialized (ever-written) blocks.
  [[nodiscard]] std::size_t resident_blocks() const { return blocks_.size(); }

 private:
  using Block = std::array<std::byte, kBlockSize>;
  std::uint64_t block_count_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Block>> blocks_;
  BlockStats stats_;
};

}  // namespace tinca::blockdev
