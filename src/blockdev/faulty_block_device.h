// Fault-injecting block-device decorator.
//
// Wraps any BlockDevice and subjects its traffic to a seeded, scriptable
// fault schedule (DESIGN.md §9):
//
//   * transient read/write errors — the operation fails with kTransient and
//     does not reach the inner device; a retry may succeed;
//   * permanent bad sectors — discovered on write: the write fails with
//     kBadSector and the block is bad forever after.  Reads of a bad sector
//     still return the last successfully written contents (the defect grew
//     on the write path; read-side media loss would need replication or
//     checksums above this layer and is documented as out of scope);
//   * torn writes — a simulated power cut lands mid-write, the inner device
//     receives a half-new/half-old 4 KB block, and CrashException is thrown
//     (either randomly via `torn_write_rate` or deterministically via a
//     CrashInjector torn point, see nvm/crash.h);
//   * latency spikes — occasional multi-millisecond stalls charged to the
//     SimClock, modelling device-internal housekeeping.
//
// Randomized faults draw from a private xoshiro generator seeded by
// FaultConfig::seed, so every schedule is reproducible from the seed alone.
// Scripted faults (mark_bad, fail_next_reads/writes) let unit tests hit an
// exact path without probability tuning.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>

#include "blockdev/block_device.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "nvm/crash.h"

namespace tinca::blockdev {

/// Probabilities and parameters of the randomized fault schedule.  All
/// rates are per-operation Bernoulli probabilities; zero (the default)
/// disables that fault class, so a default FaultConfig is a transparent
/// pass-through.
struct FaultConfig {
  std::uint64_t seed = 1;            ///< fault-schedule RNG seed
  double transient_read_rate = 0.0;  ///< P(read fails with kTransient)
  double transient_write_rate = 0.0; ///< P(write fails with kTransient)
  double bad_sector_rate = 0.0;      ///< P(write discovers a new bad sector)
  double torn_write_rate = 0.0;      ///< P(write tears + CrashException)
  double latency_spike_rate = 0.0;   ///< P(operation stalls spike_ns extra)
  std::uint64_t latency_spike_ns = 5'000'000;  ///< spike length (5 ms)
};

/// Counters of injected faults.
struct FaultStats {
  std::uint64_t transient_read_errors = 0;
  std::uint64_t transient_write_errors = 0;
  std::uint64_t bad_sectors = 0;        ///< distinct sectors gone bad
  std::uint64_t bad_sector_errors = 0;  ///< writes failed on a bad sector
  std::uint64_t torn_writes = 0;
  std::uint64_t latency_spikes = 0;
};

/// BlockDevice decorator injecting the configured faults.
class FaultyBlockDevice final : public BlockDevice {
 public:
  /// `clock` (optional) receives latency-spike charges; `injector`
  /// (optional) is consulted for deterministic torn-write points — pass the
  /// stack's NvmDevice injector so one armed counter covers NVM stores and
  /// disk writes alike.
  FaultyBlockDevice(BlockDevice& inner, FaultConfig cfg,
                    sim::SimClock* clock = nullptr,
                    nvm::CrashInjector* injector = nullptr);

  [[nodiscard]] std::uint64_t block_count() const override {
    return inner_.block_count();
  }

  IoStatus read(std::uint64_t blkno, std::span<std::byte> dst) override;
  IoStatus write(std::uint64_t blkno, std::span<const std::byte> src) override;

  [[nodiscard]] const BlockStats& stats() const override {
    return inner_.stats();
  }

  // --- Scripted faults (tests) ---------------------------------------------

  /// Permanently mark `blkno` bad: every future write to it fails.
  void mark_bad(std::uint64_t blkno);

  /// Heal a bad sector: writes to `blkno` succeed again.  Models sector
  /// remapping / a transient controller fault clearing, and lets tests
  /// drive the quarantine-then-recover paths deterministically.
  void heal(std::uint64_t blkno) { bad_.erase(blkno); }

  /// Fail the next `n` reads with kTransient (counts down per read).
  void fail_next_reads(std::uint32_t n) { forced_read_failures_ = n; }

  /// Fail the next `n` writes with kTransient (counts down per write).
  void fail_next_writes(std::uint32_t n) { forced_write_failures_ = n; }

  /// Tear the `n`-th write from now (1-based): the inner device gets a
  /// half-new/half-old block and CrashException is thrown.
  void tear_write_after(std::uint32_t n) { forced_tear_countdown_ = n; }

  /// Zero every randomized fault rate (already-grown bad sectors and
  /// scripted faults keep applying).  Harnesses call this before verifying
  /// recovered state so verification reads don't grow new faults.
  void quiesce() {
    cfg_.transient_read_rate = 0.0;
    cfg_.transient_write_rate = 0.0;
    cfg_.bad_sector_rate = 0.0;
    cfg_.torn_write_rate = 0.0;
    cfg_.latency_spike_rate = 0.0;
  }

  // --- Introspection -------------------------------------------------------

  [[nodiscard]] bool is_bad(std::uint64_t blkno) const {
    return bad_.contains(blkno);
  }
  [[nodiscard]] std::size_t bad_sector_count() const { return bad_.size(); }
  [[nodiscard]] const FaultStats& fault_stats() const { return faults_; }
  [[nodiscard]] const FaultConfig& config() const { return cfg_; }

 private:
  void maybe_spike();
  /// Apply a torn write (prefix new, suffix old) and raise CrashException.
  [[noreturn]] void tear(std::uint64_t blkno, std::span<const std::byte> src);

  BlockDevice& inner_;
  FaultConfig cfg_;
  sim::SimClock* clock_;
  nvm::CrashInjector* injector_;
  Rng rng_;
  std::unordered_set<std::uint64_t> bad_;
  std::uint32_t forced_read_failures_ = 0;
  std::uint32_t forced_write_failures_ = 0;
  std::uint32_t forced_tear_countdown_ = 0;
  FaultStats faults_;
};

}  // namespace tinca::blockdev
