#include "fs/minifs.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "blockdev/block_device.h"
#include "common/bytes.h"
#include "common/expect.h"

namespace tinca::fs {

namespace {
constexpr std::uint64_t kBlockSize = blockdev::kBlockSize;
constexpr std::uint64_t kFsMagic = 0x4D494E4946532121ULL;  // "MINIFS!!"
constexpr std::uint64_t kPtrsPerIndirect = kBlockSize / 8;
constexpr std::uint64_t kInodesPerBlock = kBlockSize / 128;
constexpr std::uint64_t kEntriesPerBlock = kBlockSize / 64;
constexpr std::uint64_t kNoIno = UINT64_MAX;

std::vector<std::string_view> split_path(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    if (j > i) parts.push_back(path.substr(i, j - i));
    i = j;
  }
  return parts;
}
}  // namespace

// ---------------------------------------------------------------------------
// Construction / mkfs / mount
// ---------------------------------------------------------------------------

MiniFs::MiniFs(backend::TxnBackend& backend, MiniFsConfig cfg)
    : backend_(backend), cfg_(cfg) {
  txn_budget_ = std::min(cfg_.max_txn_blocks, backend_.max_txn_blocks());
  TINCA_EXPECT(txn_budget_ >= 64, "transaction budget too small for MiniFs");
}

MiniFs::~MiniFs() = default;  // deliberately no implicit fsync: an unmount
                              // without fsync() behaves like a crash.

std::unique_ptr<MiniFs> MiniFs::mkfs(backend::TxnBackend& backend,
                                     MiniFsConfig cfg) {
  auto fsys = std::unique_ptr<MiniFs>(new MiniFs(backend, cfg));
  fsys->compute_geometry();
  fsys->inode_bitmap_.assign(fsys->geo_.ibmap_blocks * kBlockSize, 0);
  fsys->block_bitmap_.assign(fsys->geo_.bbmap_blocks * kBlockSize, 0);

  // Zero the metadata regions in budget-sized transactions; the superblock
  // is committed *last*, so a torn mkfs leaves a device that cleanly fails
  // the magic check at mount instead of a half-formatted file system.
  const std::vector<std::byte> zeros(kBlockSize, std::byte{0});
  const std::uint64_t batch = fsys->txn_budget_ / 2;
  std::uint64_t staged = 0;
  auto zero_region = [&](std::uint64_t start, std::uint64_t count) {
    for (std::uint64_t b = 0; b < count; ++b) {
      fsys->write_blk(start + b, zeros);
      if (++staged >= batch) {
        fsys->commit_txn();
        staged = 0;
      }
    }
  };
  zero_region(fsys->geo_.ibmap_start, fsys->geo_.ibmap_blocks);
  zero_region(fsys->geo_.bbmap_start, fsys->geo_.bbmap_blocks);
  zero_region(fsys->geo_.itable_start, fsys->geo_.itable_blocks);
  fsys->commit_txn();

  // Root directory (inode 0) and the superblock seal the format.
  const std::uint64_t root = fsys->alloc_inode();
  TINCA_ENSURE(root == kRootIno, "root inode must be 0");
  Inode rootnode;
  rootnode.type = 2;
  rootnode.direct.assign(kDirectPtrs, 0);
  fsys->write_inode(root, rootnode);
  fsys->write_superblock();
  fsys->commit_txn();
  return fsys;
}

std::unique_ptr<MiniFs> MiniFs::mount(backend::TxnBackend& backend,
                                      MiniFsConfig cfg) {
  auto fsys = std::unique_ptr<MiniFs>(new MiniFs(backend, cfg));
  fsys->load_superblock();
  fsys->load_bitmaps();
  return fsys;
}

void MiniFs::compute_geometry() {
  geo_.total_blocks = backend_.data_block_limit();
  TINCA_EXPECT(geo_.total_blocks >= 64, "device too small for MiniFs");
  geo_.inode_count = cfg_.inode_count;
  geo_.ibmap_start = 1;
  geo_.ibmap_blocks = (geo_.inode_count + kBlockSize * 8 - 1) / (kBlockSize * 8);
  geo_.bbmap_start = geo_.ibmap_start + geo_.ibmap_blocks;
  // One pass: bitmap must cover the data area, which depends on bitmap size;
  // size it for the whole device (slightly generous, never wrong).
  geo_.bbmap_blocks = (geo_.total_blocks + kBlockSize * 8 - 1) / (kBlockSize * 8);
  geo_.itable_start = geo_.bbmap_start + geo_.bbmap_blocks;
  geo_.itable_blocks = (geo_.inode_count + kInodesPerBlock - 1) / kInodesPerBlock;
  geo_.data_start = geo_.itable_start + geo_.itable_blocks;
  TINCA_EXPECT(geo_.data_start + 16 < geo_.total_blocks,
               "device too small after metadata reservation");
}

void MiniFs::write_superblock() {
  std::vector<std::byte> sb(kBlockSize, std::byte{0});
  std::uint64_t off = 0;
  for (std::uint64_t v :
       {kFsMagic, geo_.total_blocks, geo_.inode_count, geo_.ibmap_start,
        geo_.ibmap_blocks, geo_.bbmap_start, geo_.bbmap_blocks,
        geo_.itable_start, geo_.itable_blocks, geo_.data_start}) {
    store_le(sb.data() + off, v, 8);
    off += 8;
  }
  write_blk(0, sb);
}

void MiniFs::load_superblock() {
  std::vector<std::byte> sb(kBlockSize);
  read_blk(0, sb);
  TINCA_EXPECT(load_le(sb.data(), 8) == kFsMagic, "not a MiniFs device");
  std::uint64_t off = 8;
  auto next = [&] {
    const std::uint64_t v = load_le(sb.data() + off, 8);
    off += 8;
    return v;
  };
  geo_.total_blocks = next();
  geo_.inode_count = next();
  geo_.ibmap_start = next();
  geo_.ibmap_blocks = next();
  geo_.bbmap_start = next();
  geo_.bbmap_blocks = next();
  geo_.itable_start = next();
  geo_.itable_blocks = next();
  geo_.data_start = next();
}

void MiniFs::load_bitmaps() {
  inode_bitmap_.assign(geo_.ibmap_blocks * kBlockSize, 0);
  block_bitmap_.assign(geo_.bbmap_blocks * kBlockSize, 0);
  std::vector<std::byte> blk(kBlockSize);
  for (std::uint64_t b = 0; b < geo_.ibmap_blocks; ++b) {
    read_blk(geo_.ibmap_start + b, blk);
    std::memcpy(inode_bitmap_.data() + b * kBlockSize, blk.data(), kBlockSize);
  }
  for (std::uint64_t b = 0; b < geo_.bbmap_blocks; ++b) {
    read_blk(geo_.bbmap_start + b, blk);
    std::memcpy(block_bitmap_.data() + b * kBlockSize, blk.data(), kBlockSize);
  }
}

std::uint64_t MiniFs::max_file_bytes() const {
  return (kDirectPtrs + kPtrsPerIndirect) * kBlockSize;
}

// ---------------------------------------------------------------------------
// Page cache and compound transactions
// ---------------------------------------------------------------------------

void MiniFs::read_blk(std::uint64_t blkno, std::span<std::byte> dst) {
  auto it = staged_.find(blkno);
  if (it != staged_.end()) {
    std::copy(it->second.begin(), it->second.end(), dst.begin());
    return;
  }
  backend_.read_block(blkno, dst);
}

void MiniFs::write_blk(std::uint64_t blkno, std::span<const std::byte> data) {
  TINCA_EXPECT(data.size() == kBlockSize, "MiniFs writes whole blocks");
  auto [it, inserted] = staged_.try_emplace(blkno);
  if (inserted) staged_order_.push_back(blkno);
  it->second.assign(data.begin(), data.end());
}

void MiniFs::commit_txn() {
  if (staged_.empty()) {
    ops_since_commit_ = 0;
    return;
  }
  backend_.begin();
  for (std::uint64_t blkno : staged_order_) backend_.stage(blkno, staged_[blkno]);
  backend_.commit();
  stats_.blocks_staged += staged_order_.size();
  ++stats_.txns_committed;
  staged_.clear();
  staged_order_.clear();
  ops_since_commit_ = 0;
}

void MiniFs::op_done(std::uint64_t worst_case_blocks) {
  ++stats_.ops;
  ++ops_since_commit_;
  if (ops_since_commit_ >= cfg_.group_commit_ops ||
      staged_.size() + worst_case_blocks + 16 >= txn_budget_)
    commit_txn();
}

void MiniFs::fsync() { commit_txn(); }

void MiniFs::sync_all() {
  commit_txn();
  backend_.flush();
}

// ---------------------------------------------------------------------------
// Allocation
// ---------------------------------------------------------------------------

void MiniFs::flush_bitmap_bit(bool inode_bitmap, std::uint64_t index) {
  const std::uint64_t bitmap_block = index / (kBlockSize * 8);
  const auto& bits = inode_bitmap ? inode_bitmap_ : block_bitmap_;
  const std::uint64_t start =
      inode_bitmap ? geo_.ibmap_start : geo_.bbmap_start;
  std::vector<std::byte> blk(kBlockSize);
  std::memcpy(blk.data(), bits.data() + bitmap_block * kBlockSize, kBlockSize);
  write_blk(start + bitmap_block, blk);
}

std::uint64_t MiniFs::alloc_block() {
  const std::uint64_t data_blocks = geo_.total_blocks - geo_.data_start;
  for (std::uint64_t probe = 0; probe < data_blocks; ++probe) {
    const std::uint64_t i = (block_cursor_ + probe) % data_blocks;
    if (!(block_bitmap_[i / 8] & (1u << (i % 8)))) {
      block_bitmap_[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
      block_cursor_ = i + 1;
      flush_bitmap_bit(false, i);
      // Fresh blocks start zeroed: a reused block may hold stale content
      // that a partial write would otherwise expose.
      const std::vector<std::byte> zeros(kBlockSize, std::byte{0});
      write_blk(geo_.data_start + i, zeros);
      return geo_.data_start + i;
    }
  }
  TINCA_EXPECT(false, "MiniFs: out of data blocks");
  return 0;
}

void MiniFs::free_block(std::uint64_t blkno) {
  TINCA_EXPECT(blkno >= geo_.data_start && blkno < geo_.total_blocks,
               "free of a non-data block");
  const std::uint64_t i = blkno - geo_.data_start;
  TINCA_ENSURE(block_bitmap_[i / 8] & (1u << (i % 8)), "double free of block");
  block_bitmap_[i / 8] &= static_cast<std::uint8_t>(~(1u << (i % 8)));
  flush_bitmap_bit(false, i);
}

std::uint64_t MiniFs::alloc_inode() {
  for (std::uint64_t i = 0; i < geo_.inode_count; ++i) {
    if (!(inode_bitmap_[i / 8] & (1u << (i % 8)))) {
      inode_bitmap_[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
      flush_bitmap_bit(true, i);
      return i;
    }
  }
  TINCA_EXPECT(false, "MiniFs: out of inodes");
  return 0;
}

void MiniFs::free_inode(std::uint64_t ino) {
  TINCA_ENSURE(inode_bitmap_[ino / 8] & (1u << (ino % 8)), "double free of inode");
  inode_bitmap_[ino / 8] &= static_cast<std::uint8_t>(~(1u << (ino % 8)));
  flush_bitmap_bit(true, ino);
}

// ---------------------------------------------------------------------------
// Inodes
// ---------------------------------------------------------------------------

MiniFs::Inode MiniFs::read_inode(std::uint64_t ino) {
  TINCA_EXPECT(ino < geo_.inode_count, "inode number out of range");
  std::vector<std::byte> blk(kBlockSize);
  read_blk(geo_.itable_start + ino / kInodesPerBlock, blk);
  const std::byte* p = blk.data() + (ino % kInodesPerBlock) * kInodeBytes;
  Inode inode;
  inode.type = load_le(p, 8);
  inode.size = load_le(p + 8, 8);
  inode.direct.resize(kDirectPtrs);
  for (std::uint64_t d = 0; d < kDirectPtrs; ++d)
    inode.direct[d] = load_le(p + 16 + d * 8, 8);
  inode.indirect = load_le(p + 16 + kDirectPtrs * 8, 8);
  return inode;
}

void MiniFs::write_inode(std::uint64_t ino, const Inode& inode) {
  TINCA_EXPECT(ino < geo_.inode_count, "inode number out of range");
  std::vector<std::byte> blk(kBlockSize);
  read_blk(geo_.itable_start + ino / kInodesPerBlock, blk);
  std::byte* p = blk.data() + (ino % kInodesPerBlock) * kInodeBytes;
  store_le(p, inode.type, 8);
  store_le(p + 8, inode.size, 8);
  for (std::uint64_t d = 0; d < kDirectPtrs; ++d)
    store_le(p + 16 + d * 8, d < inode.direct.size() ? inode.direct[d] : 0, 8);
  store_le(p + 16 + kDirectPtrs * 8, inode.indirect, 8);
  write_blk(geo_.itable_start + ino / kInodesPerBlock, blk);
}

// ---------------------------------------------------------------------------
// File block mapping
// ---------------------------------------------------------------------------

std::uint64_t MiniFs::file_block(Inode& inode, std::uint64_t index,
                                 bool allocate, bool* inode_dirty) {
  if (index < kDirectPtrs) {
    if (inode.direct[index] == 0) {
      if (!allocate) return 0;
      inode.direct[index] = alloc_block();
      if (inode_dirty) *inode_dirty = true;
    }
    return inode.direct[index];
  }
  const std::uint64_t ii = index - kDirectPtrs;
  TINCA_EXPECT(ii < kPtrsPerIndirect, "file exceeds maximum size");
  if (inode.indirect == 0) {
    if (!allocate) return 0;
    inode.indirect = alloc_block();
    if (inode_dirty) *inode_dirty = true;
  }
  std::vector<std::byte> iblk(kBlockSize);
  read_blk(inode.indirect, iblk);
  std::uint64_t ptr = load_le(iblk.data() + ii * 8, 8);
  if (ptr == 0) {
    if (!allocate) return 0;
    ptr = alloc_block();
    // alloc_block may stage new content for other blocks; reread not needed
    // since iblk is our private copy and only slot ii changes here.
    store_le(iblk.data() + ii * 8, ptr, 8);
    write_blk(inode.indirect, iblk);
  }
  return ptr;
}

void MiniFs::free_file_blocks(Inode& inode) {
  for (std::uint64_t d = 0; d < kDirectPtrs; ++d)
    if (inode.direct[d]) {
      free_block(inode.direct[d]);
      inode.direct[d] = 0;
    }
  if (inode.indirect) {
    std::vector<std::byte> iblk(kBlockSize);
    read_blk(inode.indirect, iblk);
    for (std::uint64_t i = 0; i < kPtrsPerIndirect; ++i) {
      const std::uint64_t ptr = load_le(iblk.data() + i * 8, 8);
      if (ptr) free_block(ptr);
    }
    free_block(inode.indirect);
    inode.indirect = 0;
  }
  inode.size = 0;
}

// ---------------------------------------------------------------------------
// Directories
// ---------------------------------------------------------------------------

std::uint64_t MiniFs::dir_lookup(std::uint64_t dir_ino, std::string_view name) {
  Inode dir = read_inode(dir_ino);
  TINCA_EXPECT(dir.type == 2, "lookup in a non-directory");
  const std::uint64_t nblocks = (dir.size + kBlockSize - 1) / kBlockSize;
  std::vector<std::byte> blk(kBlockSize);
  for (std::uint64_t b = 0; b < nblocks; ++b) {
    const std::uint64_t blkno = file_block(dir, b, false, nullptr);
    if (blkno == 0) continue;
    read_blk(blkno, blk);
    for (std::uint64_t e = 0; e < kEntriesPerBlock; ++e) {
      const std::byte* p = blk.data() + e * kDirEntryBytes;
      if (static_cast<std::uint8_t>(p[8]) == 0) continue;  // unused
      const char* n = reinterpret_cast<const char*>(p + 9);
      if (name == std::string_view(n, strnlen(n, kNameMax)))
        return load_le(p, 8);
    }
  }
  return kNoIno;
}

void MiniFs::dir_add(std::uint64_t dir_ino, std::string_view name,
                     std::uint64_t ino) {
  TINCA_EXPECT(!name.empty() && name.size() <= kNameMax, "bad file name");
  Inode dir = read_inode(dir_ino);
  TINCA_EXPECT(dir.type == 2, "dir_add in a non-directory");
  const std::uint64_t nblocks = (dir.size + kBlockSize - 1) / kBlockSize;
  std::vector<std::byte> blk(kBlockSize);
  bool inode_dirty = false;

  auto write_entry = [&](std::byte* p) {
    store_le(p, ino, 8);
    p[8] = std::byte{1};
    std::memset(p + 9, 0, kNameMax + 1);
    std::memcpy(p + 9, name.data(), name.size());
  };

  for (std::uint64_t b = 0; b < nblocks; ++b) {
    const std::uint64_t blkno = file_block(dir, b, false, nullptr);
    if (blkno == 0) continue;
    read_blk(blkno, blk);
    for (std::uint64_t e = 0; e < kEntriesPerBlock; ++e) {
      std::byte* p = blk.data() + e * kDirEntryBytes;
      if (static_cast<std::uint8_t>(p[8]) != 0) continue;
      write_entry(p);
      write_blk(blkno, blk);
      return;
    }
  }
  // No free slot: grow the directory by one block.
  const std::uint64_t blkno = file_block(dir, nblocks, true, &inode_dirty);
  read_blk(blkno, blk);
  write_entry(blk.data());
  write_blk(blkno, blk);
  dir.size = (nblocks + 1) * kBlockSize;
  write_inode(dir_ino, dir);
  (void)inode_dirty;
}

void MiniFs::dir_remove(std::uint64_t dir_ino, std::string_view name) {
  Inode dir = read_inode(dir_ino);
  const std::uint64_t nblocks = (dir.size + kBlockSize - 1) / kBlockSize;
  std::vector<std::byte> blk(kBlockSize);
  for (std::uint64_t b = 0; b < nblocks; ++b) {
    const std::uint64_t blkno = file_block(dir, b, false, nullptr);
    if (blkno == 0) continue;
    read_blk(blkno, blk);
    for (std::uint64_t e = 0; e < kEntriesPerBlock; ++e) {
      std::byte* p = blk.data() + e * kDirEntryBytes;
      if (static_cast<std::uint8_t>(p[8]) == 0) continue;
      const char* n = reinterpret_cast<const char*>(p + 9);
      if (name == std::string_view(n, strnlen(n, kNameMax))) {
        p[8] = std::byte{0};
        write_blk(blkno, blk);
        return;
      }
    }
  }
  TINCA_EXPECT(false, "dir_remove: name not found");
}

std::uint64_t MiniFs::resolve(std::string_view path) {
  std::uint64_t ino = kRootIno;
  for (std::string_view part : split_path(path)) {
    ino = dir_lookup(ino, part);
    if (ino == kNoIno) return kNoIno;
  }
  return ino;
}

std::uint64_t MiniFs::resolve_parent(std::string_view path, std::string& leaf) {
  auto parts = split_path(path);
  TINCA_EXPECT(!parts.empty(), "path has no leaf component");
  leaf.assign(parts.back());
  std::uint64_t ino = kRootIno;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    ino = dir_lookup(ino, parts[i]);
    TINCA_EXPECT(ino != kNoIno, "parent directory does not exist");
  }
  return ino;
}

std::uint64_t MiniFs::make_node(std::string_view path, std::uint64_t type) {
  std::string leaf;
  const std::uint64_t parent = resolve_parent(path, leaf);
  TINCA_EXPECT(dir_lookup(parent, leaf) == kNoIno, "path already exists");
  const std::uint64_t ino = alloc_inode();
  Inode node;
  node.type = type;
  node.direct.assign(kDirectPtrs, 0);
  write_inode(ino, node);
  dir_add(parent, leaf, ino);
  return ino;
}

// ---------------------------------------------------------------------------
// Public namespace ops
// ---------------------------------------------------------------------------

void MiniFs::create(std::string_view path) {
  make_node(path, 1);
  ++stats_.creates;
  op_done(8);
}

void MiniFs::mkdir(std::string_view path) {
  make_node(path, 2);
  op_done(8);
}

void MiniFs::remove(std::string_view path) {
  std::string leaf;
  const std::uint64_t parent = resolve_parent(path, leaf);
  const std::uint64_t ino = dir_lookup(parent, leaf);
  TINCA_EXPECT(ino != kNoIno, "remove: no such file");
  Inode node = read_inode(ino);
  TINCA_EXPECT(node.type == 1, "remove: not a regular file");
  free_file_blocks(node);
  node.type = 0;
  write_inode(ino, node);
  free_inode(ino);
  dir_remove(parent, leaf);
  ++stats_.deletes;
  op_done(16);
}

void MiniFs::rename(std::string_view from, std::string_view to) {
  std::string from_leaf;
  const std::uint64_t from_parent = resolve_parent(from, from_leaf);
  const std::uint64_t ino = dir_lookup(from_parent, from_leaf);
  TINCA_EXPECT(ino != kNoIno, "rename: source does not exist");
  std::string to_leaf;
  const std::uint64_t to_parent = resolve_parent(to, to_leaf);
  TINCA_EXPECT(dir_lookup(to_parent, to_leaf) == kNoIno,
               "rename: destination already exists");
  // Link-then-unlink: a crash between the two commits at worst leaves the
  // inode reachable under both names within one compound transaction, which
  // commits atomically anyway.
  dir_add(to_parent, to_leaf, ino);
  dir_remove(from_parent, from_leaf);
  op_done(8);
}

bool MiniFs::exists(std::string_view path) { return resolve(path) != kNoIno; }

std::vector<std::string> MiniFs::list(std::string_view path) {
  const std::uint64_t ino = resolve(path);
  TINCA_EXPECT(ino != kNoIno, "list: no such directory");
  Inode dir = read_inode(ino);
  TINCA_EXPECT(dir.type == 2, "list: not a directory");
  std::vector<std::string> names;
  const std::uint64_t nblocks = (dir.size + kBlockSize - 1) / kBlockSize;
  std::vector<std::byte> blk(kBlockSize);
  for (std::uint64_t b = 0; b < nblocks; ++b) {
    const std::uint64_t blkno = file_block(dir, b, false, nullptr);
    if (blkno == 0) continue;
    read_blk(blkno, blk);
    for (std::uint64_t e = 0; e < kEntriesPerBlock; ++e) {
      const std::byte* p = blk.data() + e * kDirEntryBytes;
      if (static_cast<std::uint8_t>(p[8]) == 0) continue;
      const char* n = reinterpret_cast<const char*>(p + 9);
      names.emplace_back(n, strnlen(n, kNameMax));
    }
  }
  return names;
}

// ---------------------------------------------------------------------------
// Data ops
// ---------------------------------------------------------------------------

void MiniFs::write(std::string_view path, std::uint64_t offset,
                   std::span<const std::byte> data) {
  const std::uint64_t ino = resolve(path);
  TINCA_EXPECT(ino != kNoIno, "write: no such file");
  Inode node = read_inode(ino);
  TINCA_EXPECT(node.type == 1, "write: not a regular file");
  TINCA_EXPECT(offset + data.size() <= max_file_bytes(), "file too large");

  std::vector<std::byte> blk(kBlockSize);
  std::size_t done = 0;
  bool inode_dirty = false;
  while (done < data.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t bidx = pos / kBlockSize;
    const std::uint64_t boff = pos % kBlockSize;
    const std::size_t chunk =
        std::min<std::size_t>(kBlockSize - boff, data.size() - done);
    const std::uint64_t blkno = file_block(node, bidx, true, &inode_dirty);
    if (chunk == kBlockSize) {
      write_blk(blkno, data.subspan(done, chunk));
    } else {
      read_blk(blkno, blk);
      std::memcpy(blk.data() + boff, data.data() + done, chunk);
      write_blk(blkno, blk);
    }
    done += chunk;
  }
  if (offset + data.size() > node.size) {
    node.size = offset + data.size();
    inode_dirty = true;
  }
  if (inode_dirty || true) write_inode(ino, node);  // mtime-style update
  ++stats_.writes;
  op_done(data.size() / kBlockSize + 8);
}

void MiniFs::append(std::string_view path, std::span<const std::byte> data) {
  write(path, file_size(path), data);
}

std::size_t MiniFs::read(std::string_view path, std::uint64_t offset,
                         std::span<std::byte> dst) {
  const std::uint64_t ino = resolve(path);
  TINCA_EXPECT(ino != kNoIno, "read: no such file");
  Inode node = read_inode(ino);
  TINCA_EXPECT(node.type == 1, "read: not a regular file");
  if (offset >= node.size) return 0;
  const std::size_t want =
      std::min<std::size_t>(dst.size(), node.size - offset);

  std::vector<std::byte> blk(kBlockSize);
  std::size_t done = 0;
  while (done < want) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t bidx = pos / kBlockSize;
    const std::uint64_t boff = pos % kBlockSize;
    const std::size_t chunk = std::min<std::size_t>(kBlockSize - boff, want - done);
    const std::uint64_t blkno = file_block(node, bidx, false, nullptr);
    if (blkno == 0) {
      std::memset(dst.data() + done, 0, chunk);  // hole
    } else {
      read_blk(blkno, blk);
      std::memcpy(dst.data() + done, blk.data() + boff, chunk);
    }
    done += chunk;
  }
  ++stats_.reads;
  op_done(0);
  return want;
}

void MiniFs::truncate(std::string_view path, std::uint64_t size) {
  const std::uint64_t ino = resolve(path);
  TINCA_EXPECT(ino != kNoIno, "truncate: no such file");
  Inode node = read_inode(ino);
  TINCA_EXPECT(node.type == 1, "truncate: not a regular file");
  TINCA_EXPECT(size <= max_file_bytes(), "truncate beyond maximum file size");

  if (size < node.size) {
    // Free every block wholly past the new end; zero the tail of the block
    // that straddles it so a later extension reads zeros.
    const std::uint64_t keep_blocks = (size + kBlockSize - 1) / kBlockSize;
    const std::uint64_t had_blocks = (node.size + kBlockSize - 1) / kBlockSize;
    for (std::uint64_t idx = keep_blocks; idx < had_blocks; ++idx) {
      if (idx < kDirectPtrs) {
        if (node.direct[idx]) {
          free_block(node.direct[idx]);
          node.direct[idx] = 0;
        }
      } else if (node.indirect) {
        std::vector<std::byte> iblk(kBlockSize);
        read_blk(node.indirect, iblk);
        const std::uint64_t ii = idx - kDirectPtrs;
        const std::uint64_t ptr = load_le(iblk.data() + ii * 8, 8);
        if (ptr) {
          free_block(ptr);
          store_le(iblk.data() + ii * 8, 0, 8);
          write_blk(node.indirect, iblk);
        }
      }
    }
    if (keep_blocks <= kDirectPtrs && node.indirect) {
      free_block(node.indirect);
      node.indirect = 0;
    }
    if (size % kBlockSize != 0) {
      const std::uint64_t last = size / kBlockSize;
      const std::uint64_t blkno = file_block(node, last, false, nullptr);
      if (blkno != 0) {
        std::vector<std::byte> blk(kBlockSize);
        read_blk(blkno, blk);
        std::fill(blk.begin() + static_cast<std::ptrdiff_t>(size % kBlockSize),
                  blk.end(), std::byte{0});
        write_blk(blkno, blk);
      }
    }
  }
  node.size = size;  // growth creates a hole; reads of holes return zeros
  write_inode(ino, node);
  op_done(8);
}

std::uint64_t MiniFs::file_size(std::string_view path) {
  const std::uint64_t ino = resolve(path);
  TINCA_EXPECT(ino != kNoIno, "file_size: no such file");
  return read_inode(ino).size;
}

// ---------------------------------------------------------------------------
// fsck
// ---------------------------------------------------------------------------

const char* fsck_code_name(FsckCode code) {
  switch (code) {
    case FsckCode::kNone: return "none";
    case FsckCode::kPtrOutOfRange: return "ptr-out-of-range";
    case FsckCode::kCrossLinkedBlock: return "cross-linked-block";
    case FsckCode::kBadDirType: return "bad-dir-type";
    case FsckCode::kBadDirSize: return "bad-dir-size";
    case FsckCode::kEntryBadInode: return "entry-bad-inode";
    case FsckCode::kEntryFreeInode: return "entry-free-inode";
    case FsckCode::kMultiplyLinkedInode: return "multiply-linked-inode";
    case FsckCode::kEntryUntypedInode: return "entry-untyped-inode";
    case FsckCode::kDupName: return "dup-name";
    case FsckCode::kFileTooLarge: return "file-too-large";
    case FsckCode::kBlockPastEof: return "block-past-eof";
    case FsckCode::kBlockLeak: return "block-leak";
    case FsckCode::kBlockFreeButUsed: return "block-free-but-used";
    case FsckCode::kInodeLeak: return "inode-leak";
    case FsckCode::kInodeFreeButLinked: return "inode-free-but-linked";
  }
  return "?";
}

FsckReport MiniFs::fsck() {
  FsckReport report;
  auto complain = [&](FsckCode code, std::string msg) {
    report.ok = false;
    report.codes.push_back(code);
    report.problems.push_back("[" + std::string(fsck_code_name(code)) + "] " +
                              std::move(msg));
  };

  const std::uint64_t data_blocks = geo_.total_blocks - geo_.data_start;
  std::vector<std::uint8_t> reached_blocks(data_blocks, 0);
  std::vector<std::uint8_t> reached_inodes(geo_.inode_count, 0);

  auto mark_block = [&](std::uint64_t blkno, const char* what) {
    if (blkno < geo_.data_start || blkno >= geo_.total_blocks) {
      complain(FsckCode::kPtrOutOfRange,
               std::string(what) + ": pointer outside data area");
      return;
    }
    const std::uint64_t i = blkno - geo_.data_start;
    if (reached_blocks[i])
      complain(FsckCode::kCrossLinkedBlock,
               std::string(what) + ": block " + std::to_string(blkno) +
                   " doubly referenced");
    reached_blocks[i] = 1;
    ++report.used_blocks;
  };

  // Mark every payload block of `inode` reachable, and flag blocks that are
  // mapped wholly past the file's size ceiling — truncate must free them.
  auto mark_file_blocks = [&](const Inode& node, const char* what) {
    const std::uint64_t size_blocks =
        (node.size + kBlockSize - 1) / kBlockSize;
    for (std::uint64_t d = 0; d < kDirectPtrs; ++d)
      if (node.direct[d]) {
        mark_block(node.direct[d], what);
        if (d >= size_blocks)
          complain(FsckCode::kBlockPastEof,
                   std::string(what) + ": block mapped at index " +
                       std::to_string(d) + " past size " +
                       std::to_string(node.size));
      }
    if (node.indirect) {
      mark_block(node.indirect, what);
      // An indirect block with every slot empty and size within the direct
      // area is also past-EOF garbage; flag it via its populated slots.
      std::vector<std::byte> iblk(kBlockSize);
      read_blk(node.indirect, iblk);
      for (std::uint64_t i = 0; i < kPtrsPerIndirect; ++i) {
        const std::uint64_t ptr = load_le(iblk.data() + i * 8, 8);
        if (ptr == 0) continue;
        mark_block(ptr, what);
        if (kDirectPtrs + i >= size_blocks)
          complain(FsckCode::kBlockPastEof,
                   std::string(what) + ": indirect block mapped at index " +
                       std::to_string(kDirectPtrs + i) + " past size " +
                       std::to_string(node.size));
      }
    }
  };

  // Walk the tree from the root.
  std::vector<std::uint64_t> dirs{kRootIno};
  reached_inodes[kRootIno] = 1;
  std::vector<std::byte> blk(kBlockSize);
  while (!dirs.empty()) {
    const std::uint64_t dino = dirs.back();
    dirs.pop_back();
    Inode dir = read_inode(dino);
    if (dir.type != 2) {
      complain(FsckCode::kBadDirType,
               "directory inode " + std::to_string(dino) + " has type " +
                   std::to_string(dir.type));
      continue;
    }
    if (dir.size % kBlockSize != 0)
      complain(FsckCode::kBadDirSize,
               "directory inode " + std::to_string(dino) + " size " +
                   std::to_string(dir.size) + " is not block-aligned");
    ++report.directories;
    // Account the directory's own blocks.
    for (std::uint64_t d = 0; d < kDirectPtrs; ++d)
      if (dir.direct[d]) mark_block(dir.direct[d], "dir direct");
    if (dir.indirect) {
      mark_block(dir.indirect, "dir indirect");
      std::vector<std::byte> iblk(kBlockSize);
      read_blk(dir.indirect, iblk);
      for (std::uint64_t i = 0; i < kPtrsPerIndirect; ++i) {
        const std::uint64_t ptr = load_le(iblk.data() + i * 8, 8);
        if (ptr) mark_block(ptr, "dir indirect leaf");
      }
    }
    // Visit children.
    std::set<std::string> names_seen;
    const std::uint64_t nblocks = (dir.size + kBlockSize - 1) / kBlockSize;
    for (std::uint64_t b = 0; b < nblocks; ++b) {
      const std::uint64_t blkno = file_block(dir, b, false, nullptr);
      if (blkno == 0) continue;
      read_blk(blkno, blk);
      for (std::uint64_t e = 0; e < kEntriesPerBlock; ++e) {
        const std::byte* p = blk.data() + e * kDirEntryBytes;
        if (static_cast<std::uint8_t>(p[8]) == 0) continue;
        const char* n = reinterpret_cast<const char*>(p + 9);
        std::string name(n, strnlen(n, kNameMax));
        if (!names_seen.insert(name).second)
          complain(FsckCode::kDupName,
                   "directory inode " + std::to_string(dino) +
                       " has two entries named '" + name + "'");
        const std::uint64_t cino = load_le(p, 8);
        if (cino >= geo_.inode_count) {
          complain(FsckCode::kEntryBadInode,
                   "entry '" + name + "' points past the inode table (" +
                       std::to_string(cino) + ")");
          continue;
        }
        if (!(inode_bitmap_[cino / 8] & (1u << (cino % 8))))
          complain(FsckCode::kEntryFreeInode,
                   "entry '" + name + "' points to free inode " +
                       std::to_string(cino));
        if (reached_inodes[cino]) {
          complain(FsckCode::kMultiplyLinkedInode,
                   "inode " + std::to_string(cino) +
                       " reachable twice (hard links unsupported)");
          continue;
        }
        reached_inodes[cino] = 1;
        Inode child = read_inode(cino);
        if (child.type == 2) {
          dirs.push_back(cino);
        } else if (child.type == 1) {
          ++report.files;
          if (child.size > max_file_bytes())
            complain(FsckCode::kFileTooLarge,
                     "inode " + std::to_string(cino) + " size " +
                         std::to_string(child.size) +
                         " exceeds representable payload");
          else
            mark_file_blocks(child, "file");
          // Holes are legal: size may exceed the number of payload blocks.
        } else {
          complain(FsckCode::kEntryUntypedInode,
                   "entry '" + name + "' points to untyped inode " +
                       std::to_string(cino));
        }
      }
    }
  }

  // Bitmaps must match reachability exactly.
  for (std::uint64_t i = 0; i < data_blocks; ++i) {
    const bool marked = (block_bitmap_[i / 8] & (1u << (i % 8))) != 0;
    if (marked == (reached_blocks[i] != 0)) continue;
    if (marked)
      complain(FsckCode::kBlockLeak,
               "block " + std::to_string(geo_.data_start + i) +
                   " marked used but unreachable");
    else
      complain(FsckCode::kBlockFreeButUsed,
               "block " + std::to_string(geo_.data_start + i) +
                   " reachable but free in the bitmap");
  }
  for (std::uint64_t i = 0; i < geo_.inode_count; ++i) {
    const bool marked = (inode_bitmap_[i / 8] & (1u << (i % 8))) != 0;
    if (marked == (reached_inodes[i] != 0)) continue;
    if (marked)
      complain(FsckCode::kInodeLeak,
               "inode " + std::to_string(i) + " marked used but unreachable");
    else
      complain(FsckCode::kInodeFreeButLinked,
               "inode " + std::to_string(i) + " reachable but free");
  }
  return report;
}

}  // namespace tinca::fs
