// MiniFs: a small ext-like file system over a transactional block backend.
//
// The paper's workloads run Ext4 over the cache stacks; what matters for the
// evaluation is the *structural write stream* a journaling file system
// produces — small metadata blocks (inodes, allocation bitmaps, directories)
// interleaved with data blocks, grouped into compound transactions.  MiniFs
// reproduces that stream over the TxnBackend surface:
//
//   layout:  [ superblock | inode bitmap | block bitmap | inode table | data ]
//   inodes:  128 B, 12 direct pointers + 1 single-indirect (≤ ~2 MB files)
//   dirs:    files of 64 B entries (8 B inode number, flag, 54 B name)
//
// Like Ext4/JBD2, MiniFs batches many operations into one compound
// transaction (group commit): dirty blocks accumulate in a DRAM page cache
// and are committed when an op-count or block-count threshold is reached, or
// on fsync().  Reads overlay that page cache, so uncommitted data is visible
// to the application but lost on crash — exactly the data-consistency
// contract the paper targets (§2.3).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "backend/txn_backend.h"

namespace tinca::fs {

/// File-system geometry and batching policy.
struct MiniFsConfig {
  /// Number of inodes to provision at mkfs.
  std::uint64_t inode_count = 8192;
  /// Commit the running compound transaction after this many operations.
  std::uint64_t group_commit_ops = 64;
  /// Hard cap on blocks per compound transaction (also bounded by the
  /// backend's own limit).
  std::uint64_t max_txn_blocks = 2048;
};

/// Counters for one mounted file system.
struct MiniFsStats {
  std::uint64_t ops = 0;
  std::uint64_t creates = 0;
  std::uint64_t deletes = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t txns_committed = 0;
  std::uint64_t blocks_staged = 0;
};

/// Machine-checkable fsck problem classes.  Every invariant the checker
/// enforces has exactly one code, so harnesses can assert on *which*
/// invariant broke instead of string-matching prose.
enum class FsckCode : std::uint8_t {
  kNone = 0,
  kPtrOutOfRange,        ///< block pointer outside the data area
  kCrossLinkedBlock,     ///< one block referenced from two places
  kBadDirType,           ///< inode walked as a directory has another type
  kBadDirSize,           ///< directory size not a whole number of blocks
  kEntryBadInode,        ///< directory entry's inode number past the table
  kEntryFreeInode,       ///< directory entry points to a free inode
  kMultiplyLinkedInode,  ///< inode reachable via two entries (no hard links)
  kEntryUntypedInode,    ///< directory entry points to a type-0 inode
  kDupName,              ///< two live entries in one directory share a name
  kFileTooLarge,         ///< file size exceeds the representable payload
  kBlockPastEof,         ///< mapped file block wholly past the size ceiling
  kBlockLeak,            ///< block marked used but unreachable
  kBlockFreeButUsed,     ///< block reachable but free in the bitmap
  kInodeLeak,            ///< inode marked used but unreachable (orphan)
  kInodeFreeButLinked,   ///< inode reachable but free in the bitmap
};

/// Stable short name for a code ("cross-linked-block", ...).
const char* fsck_code_name(FsckCode code);

/// Result of a consistency check.  `problems[i]` is the human-readable
/// message for `codes[i]` (parallel vectors, same length).
struct FsckReport {
  bool ok = true;
  std::vector<std::string> problems;
  std::vector<FsckCode> codes;
  std::uint64_t files = 0;
  std::uint64_t directories = 0;
  std::uint64_t used_blocks = 0;

  /// Whether any problem with this code was recorded.
  [[nodiscard]] bool has(FsckCode code) const {
    for (const FsckCode c : codes)
      if (c == code) return true;
    return false;
  }

  /// All problems joined into one line (empty when clean).
  [[nodiscard]] std::string summary() const {
    std::string s;
    for (const std::string& p : problems) {
      if (!s.empty()) s += "; ";
      s += p;
    }
    return s;
  }
};

/// The file system.  Paths are absolute, '/'-separated; components are
/// limited to 54 bytes.
class MiniFs {
 public:
  /// Create a fresh file system on `backend` (one committed transaction).
  static std::unique_ptr<MiniFs> mkfs(backend::TxnBackend& backend,
                                      MiniFsConfig cfg = {});

  /// Mount an existing file system.
  static std::unique_ptr<MiniFs> mount(backend::TxnBackend& backend,
                                       MiniFsConfig cfg = {});

  ~MiniFs();

  // --- namespace ops --------------------------------------------------------

  /// Create an empty regular file.  Parent directory must exist.
  void create(std::string_view path);

  /// Create a directory.  Parent must exist.
  void mkdir(std::string_view path);

  /// Remove a regular file, freeing its blocks and inode.
  void remove(std::string_view path);

  /// Rename a file or directory within the tree.  The destination must not
  /// exist; its parent must.
  void rename(std::string_view from, std::string_view to);

  /// Whether `path` exists (file or directory).
  [[nodiscard]] bool exists(std::string_view path);

  /// Names in directory `path`.
  [[nodiscard]] std::vector<std::string> list(std::string_view path);

  // --- data ops -------------------------------------------------------------

  /// Write `data` at byte `offset`, extending the file as needed.
  void write(std::string_view path, std::uint64_t offset,
             std::span<const std::byte> data);

  /// Append `data` at end of file.
  void append(std::string_view path, std::span<const std::byte> data);

  /// Read up to `dst.size()` bytes at `offset`; returns bytes read.
  std::size_t read(std::string_view path, std::uint64_t offset,
                   std::span<std::byte> dst);

  /// Truncate (or extend with a hole) a regular file to `size` bytes.
  void truncate(std::string_view path, std::uint64_t size);

  /// Size of the file at `path` in bytes.
  [[nodiscard]] std::uint64_t file_size(std::string_view path);

  // --- durability -----------------------------------------------------------

  /// Commit the running compound transaction.
  void fsync();

  /// fsync + push everything to disk.
  void sync_all();

  // --- introspection --------------------------------------------------------

  /// Offline-style consistency check against the *committed* state (call
  /// after fsync, or after remount, for meaningful results).
  FsckReport fsck();

  [[nodiscard]] const MiniFsStats& stats() const { return stats_; }

  /// Largest file MiniFs can represent (direct + single indirect).
  [[nodiscard]] std::uint64_t max_file_bytes() const;

  /// On-media layout (block numbers), fixed at mkfs.  Public so corruption
  /// tests and the fuzz harness can aim raw-block mutations at a specific
  /// metadata region.
  struct Geometry {
    std::uint64_t total_blocks = 0;
    std::uint64_t inode_count = 0;
    std::uint64_t ibmap_start = 0, ibmap_blocks = 0;
    std::uint64_t bbmap_start = 0, bbmap_blocks = 0;
    std::uint64_t itable_start = 0, itable_blocks = 0;
    std::uint64_t data_start = 0;
  };

  [[nodiscard]] const Geometry& geometry() const { return geo_; }

 private:
  MiniFs(backend::TxnBackend& backend, MiniFsConfig cfg);

  struct Inode {
    std::uint64_t type = 0;  // 0 free, 1 file, 2 dir
    std::uint64_t size = 0;
    std::vector<std::uint64_t> direct;  // kDirectPtrs entries
    std::uint64_t indirect = 0;         // 0 = none
  };

  static constexpr std::uint64_t kInodeBytes = 128;
  static constexpr std::uint64_t kDirectPtrs = 12;
  static constexpr std::uint64_t kDirEntryBytes = 64;
  static constexpr std::uint64_t kNameMax = 54;
  static constexpr std::uint64_t kRootIno = 0;

  // Block I/O through the page cache.
  void read_blk(std::uint64_t blkno, std::span<std::byte> dst);
  void write_blk(std::uint64_t blkno, std::span<const std::byte> data);
  void commit_txn();
  void op_done(std::uint64_t worst_case_blocks);

  // Layout plumbing.
  void compute_geometry();
  void write_superblock();
  void load_superblock();
  void load_bitmaps();
  void flush_bitmap_bit(bool inode_bitmap, std::uint64_t index);

  // Allocation.
  std::uint64_t alloc_block();
  void free_block(std::uint64_t blkno);
  std::uint64_t alloc_inode();
  void free_inode(std::uint64_t ino);

  // Inodes.
  Inode read_inode(std::uint64_t ino);
  void write_inode(std::uint64_t ino, const Inode& inode);

  // File block mapping.
  std::uint64_t file_block(Inode& inode, std::uint64_t index, bool allocate,
                           bool* inode_dirty);
  void free_file_blocks(Inode& inode);

  // Directories.
  std::uint64_t resolve(std::string_view path);  // UINT64_MAX if missing
  std::uint64_t resolve_parent(std::string_view path, std::string& leaf);
  std::uint64_t dir_lookup(std::uint64_t dir_ino, std::string_view name);
  void dir_add(std::uint64_t dir_ino, std::string_view name, std::uint64_t ino);
  void dir_remove(std::uint64_t dir_ino, std::string_view name);
  std::uint64_t make_node(std::string_view path, std::uint64_t type);

  backend::TxnBackend& backend_;
  MiniFsConfig cfg_;
  Geometry geo_;

  std::vector<std::uint8_t> inode_bitmap_;
  std::vector<std::uint8_t> block_bitmap_;
  std::uint64_t block_cursor_ = 0;  // next-fit allocation hint

  // Page cache of dirty (staged, uncommitted) blocks.
  std::unordered_map<std::uint64_t, std::vector<std::byte>> staged_;
  std::vector<std::uint64_t> staged_order_;
  std::uint64_t ops_since_commit_ = 0;
  std::uint64_t txn_budget_ = 0;

  MiniFsStats stats_;
};

}  // namespace tinca::fs
