// File-system-level fault-fuzz / model-check harness for MiniFs, shared by
// tests/fs_fuzz_test.cc and bench/bench_fs_fuzz_sweep.cc.
//
// Where src/backend/fault_fuzz.h checks the *block* transactional contract,
// this harness checks the contract the paper actually sells (§2.3, §5.1):
// run a file system over the cache stack, cut power at arbitrary points,
// and after recovery the visible tree must equal the application's view at
// some fsync boundary — the last committed compound transaction, or
// committed + the one transaction that was mid-commit — and fsck() must be
// clean.
//
// Mechanics: each schedule builds a fresh stack (SimClock → NvmDevice →
// MemBlockDevice ← FaultyBlockDevice), wraps the backend in a recording shim
// that fingerprints every committed compound transaction, then drives MiniFs
// with a random, model-validated op history (create/mkdir/remove/rename/
// write/append/truncate/read/fsync, path- and size-skewed).  A DRAM
// reference model (a literal tree of directories and byte vectors) is
// updated in lockstep, and snapshotted at every commit boundary the shim
// observes.  After a crash (armed CrashInjector point/torn step or a random
// torn disk write) the NVM loses a random fraction of unflushed lines, the
// backend recovers, and the harness:
//
//   1. matches the recovered *block image* against the acceptable histories
//      (committed, or committed + in-flight txn) — for EVERY backend: a
//      cross-shard transaction is anchored to one atomic commit record
//      (DESIGN.md §15), so no shard-prefix states are acceptable;
//   2. for a match, mounts the file system and checks the recovered tree
//      against the corresponding model snapshot, and runs the strengthened
//      fsck() which must be clean.
//
// A sweep mode (run_fs_crash_sweep) replays one fixed op script and steps
// the injector through every NVM-store point and every torn disk-write site
// inside the script's final mutation batch + compound commit.
//
// Campaign plumbing (options base, per-kind stack construction, reproduce
// tags) comes from src/backend/fuzz_common.h; every violation message embeds
// the failing schedule's seed and fault schedule verbatim plus a
// "reproduce:" tag that replays it alone.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "backend/fuzz_common.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "fs/minifs.h"
#include "tinca/verify.h"

namespace tinca::fs {

/// Deliberate harness sabotage for oracle self-tests ("does the fs-level
/// oracle actually catch corruption the block image check cannot?").
/// kNone in every real campaign.
enum class FsSabotage : std::uint8_t {
  kNone = 0,
  /// After the final fsync, overwrite one committed *data* block behind
  /// MiniFs's back, updating the shim's bookkeeping so the block-image check
  /// passes.  Only the tree-vs-model comparison can catch it.
  kCorruptData,
  /// Same, but flip bits in the block allocation bitmap.  Only fsck()'s
  /// bitmap cross-check can catch it.
  kCorruptBitmap,
  /// Arm the *stack-level* cleaner sabotage (FuzzSabotage::kCleanerSkipsFlush):
  /// the cleaner marks blocks clean without their disk flush, so stale disk
  /// data surfaces after remount and the image check must flag it.  Requires
  /// a cleaner mode other than kDisabled.
  kCleanerSkipsFlush,
  /// Arm the stack-level cross-stream commit-record sabotage
  /// (FuzzSabotage::kSkipCommitRecordFlush): the sharded stack stages its
  /// §15 commit record without the clflush that makes it the atomic commit
  /// point, so a crash rolls back acked cross-shard transactions and the
  /// image check must flag the missing state.  Sharded stacks only.
  kSkipCommitRecordFlush,
};

/// Parameters of one fs-level fuzz campaign (one stack kind, many schedules).
struct FsFuzzOptions {
  backend::StackKind kind = backend::StackKind::kTinca;
  std::uint64_t seed = 1;
  std::uint32_t schedules = 100;
  /// First schedule index (schedule seeds depend only on the campaign seed
  /// and the absolute index, so seed + first_schedule + schedules=1 replays
  /// one schedule of a larger campaign — same contract as FuzzOptions).
  std::uint32_t first_schedule = 0;
  /// File-system operations attempted per schedule.
  std::uint32_t ops_per_schedule = 36;
  /// Probability a schedule arms a deterministic crash.
  double crash_prob = 0.6;
  /// Disk fault rates (per block operation).  Lower than the block-level
  /// harness defaults: one fs op can issue dozens of block ops.
  double transient_read_rate = 0.005;
  double transient_write_rate = 0.01;
  double bad_sector_rate = 0.0005;
  double torn_write_rate = 0.0005;
  /// 0 = per-kind default from fuzz_common.h.
  std::uint64_t nvm_bytes = 0;
  std::uint64_t disk_blocks = 1ull << 12;
  std::uint64_t ring_bytes = 64 * 1024;
  std::uint64_t journal_blocks = 512;
  std::uint32_t shards = 2;
  /// Per-shard commit streams (DESIGN.md §15); 1 keeps the single-ring
  /// layout.
  std::uint32_t streams = 1;
  blockdev::RetryPolicy retry{};
  /// MiniFs knobs: small inode table (fast mkfs) and a short group-commit
  /// window (many small compound txns → many commit boundaries to cut).
  std::uint64_t inode_count = 512;
  std::uint64_t group_commit_ops = 6;
  /// Background cleaner mode for the stack under test (kStepped drains one
  /// cleaner quantum after every completed commit, deterministically).
  cleaner::CleanerMode cleaner = cleaner::CleanerMode::kDisabled;
  /// Cleaner watermarks (self-tests drop them so the cleaner provably does
  /// work on every schedule; campaigns keep the production defaults).
  std::uint32_t cleaner_low_water_pct = cleaner::CleanerConfig{}.low_water_pct;
  std::uint32_t cleaner_high_water_pct =
      cleaner::CleanerConfig{}.high_water_pct;
  /// Group commit (DESIGN.md §14): arm the sharded stack's per-shard commit
  /// batcher, so every single-shard MiniFs commit takes the leader/batch
  /// path and the crash sweep cuts inside its pipeline stages.  No-op on
  /// stacks without a batcher (MiniFs drives one transaction at a time).
  bool group_commit = false;
  /// Oracle self-test hook; leave kNone outside harness self-tests.
  FsSabotage sabotage = FsSabotage::kNone;
};

/// Campaign outcome.  `violations` and `fsck_dirty` are the failure signals
/// (must both be 0); everything else is telemetry.
struct FsFuzzReport {
  std::uint64_t schedules = 0;
  std::uint64_t crashes = 0;         ///< schedules ended by CrashException
  std::uint64_t mkfs_crashes = 0;    ///< of those, crashes during mkfs itself
  std::uint64_t clean_remounts = 0;  ///< crash-free recover+mount round trips
  std::uint64_t io_errors = 0;       ///< unrecoverable-read IoError throws
  std::uint64_t wedges = 0;          ///< documented capacity wedges hit
  std::uint64_t fsck_runs = 0;
  std::uint64_t fsck_dirty = 0;      ///< fsck reports with problems (must be 0)
  std::uint64_t violations = 0;      ///< model/image violations (must be 0)
  std::vector<std::string> violation_messages;  ///< first few, with seeds
  std::uint64_t ops_executed = 0;
  std::uint64_t txns_committed = 0;
  std::uint64_t io_retries = 0;
  std::uint64_t io_quarantined = 0;
  std::uint64_t io_degraded_writes = 0;
  blockdev::FaultStats faults;       ///< summed over all schedules
  /// Sweep mode only: how many injector steps each sweep covered.
  std::uint64_t sweep_points = 0;
  std::uint64_t sweep_torn_points = 0;
};

namespace detail {

using backend::detail::fuzz_mix;

/// Per-kind NVM size for the fs harness.  Bigger than the block harness's
/// defaults: MiniFs requires a compound-transaction budget of ≥ 64 blocks
/// (Tinca's budget is half its data slots, UBJ's a third), yet still small
/// enough that a busy schedule evicts and writes back under fault pressure.
inline std::uint64_t fs_nvm_bytes(backend::StackKind kind,
                                  std::uint64_t override) {
  if (override != 0) return override;
  switch (kind) {
    case backend::StackKind::kClassic:
    case backend::StackKind::kClassicNoJournal:
      return 3ull << 19;  // 1.5 MB → one full 256-slot set
    case backend::StackKind::kShardedTinca:
      return 2ull << 20;  // two 1 MB shards
    case backend::StackKind::kNvLogClassic:
      return (3ull << 19) + (1ull << 19);  // classic cache + 512 KB log
    case backend::StackKind::kNvLogTinca:
      return (1ull << 20) + (1ull << 19);  // 1 MB Tinca cache + 512 KB log
    case backend::StackKind::kNvLogSharded:
      return (2ull << 20) + (1ull << 19);  // two 1 MB shards + 512 KB log
    default:
      return 1ull << 20;  // 1 MB → ~230 Tinca/UBJ blocks, budget ~110
  }
}

/// Wraps the backend under test and fingerprints every staged block, so the
/// harness knows — without trusting the file system — exactly which block
/// image each commit boundary corresponds to.
///
///   committed() : blkno → fingerprint as of the last *completed* commit
///   pending()   : blocks staged by the currently open (or torn) txn
///   universe()  : every block ever staged (the image-check read set)
///   boundaries(): number of completed commits
class RecordingBackend final : public backend::TxnBackend {
 public:
  explicit RecordingBackend(backend::TxnBackend& real) : real_(real) {}

  void begin() override {
    real_.begin();
    pending_.clear();
  }

  void stage(std::uint64_t blkno, std::span<const std::byte> data) override {
    real_.stage(blkno, data);
    pending_[blkno] = fingerprint(data);
    universe_.insert(blkno);
  }

  void commit() override {
    real_.commit();
    for (const auto& [blkno, fp] : pending_) committed_[blkno] = fp;
    pending_.clear();
    ++boundaries_;
    // Cleaner-armed campaigns drain between commits; a crash inside the
    // drain lands with nothing pending, so the acceptable image is exactly
    // the committed history (re-clean on recovery, lose nothing).
    real_.cleaner_step();
  }

  void abort() override {
    real_.abort();
    pending_.clear();
  }

  void read_block(std::uint64_t blkno, std::span<std::byte> dst) override {
    real_.read_block(blkno, dst);
  }

  void flush() override { real_.flush(); }

  [[nodiscard]] std::uint64_t data_block_limit() const override {
    return real_.data_block_limit();
  }

  [[nodiscard]] std::uint64_t max_txn_blocks() const override {
    return real_.max_txn_blocks();
  }

  [[nodiscard]] std::string name() const override { return real_.name(); }

  [[nodiscard]] bool supports_snapshots() const override {
    return real_.supports_snapshots();
  }
  std::uint64_t snapshot_open() override { return real_.snapshot_open(); }
  void snapshot_read(std::uint64_t token, std::uint64_t blkno,
                     std::span<std::byte> dst) override {
    real_.snapshot_read(token, blkno, dst);
  }
  void snapshot_close(std::uint64_t token) override {
    real_.snapshot_close(token);
  }

  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& committed()
      const {
    return committed_;
  }
  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& pending() const {
    return pending_;
  }
  [[nodiscard]] const std::set<std::uint64_t>& universe() const {
    return universe_;
  }
  [[nodiscard]] std::uint64_t boundaries() const { return boundaries_; }

  /// Sabotage hook: overwrite `blkno` on the real backend *and* in the
  /// committed bookkeeping, so the block-image check stays green and only
  /// the fs-level oracle can notice.
  void sabotage_block(std::uint64_t blkno, std::span<const std::byte> data) {
    real_.begin();
    real_.stage(blkno, data);
    real_.commit();
    committed_[blkno] = fingerprint(data);
    universe_.insert(blkno);
    ++boundaries_;
  }

 private:
  backend::TxnBackend& real_;
  std::map<std::uint64_t, std::uint64_t> committed_;
  std::map<std::uint64_t, std::uint64_t> pending_;
  std::set<std::uint64_t> universe_;
  std::uint64_t boundaries_ = 0;
};

// --- Reference model --------------------------------------------------------

/// A literal in-DRAM tree: what the file system should look like.
struct ModelNode {
  bool dir = false;
  std::vector<std::byte> data;             // files only
  std::map<std::string, ModelNode> kids;   // dirs only (sorted → stable)
};

/// One generated file-system operation.
struct FsOp {
  enum Kind : std::uint8_t {
    kCreate,
    kMkdir,
    kRemove,
    kRename,
    kWrite,
    kAppend,
    kTruncate,
    kRead,
    kFsync,
  };
  Kind kind = kFsync;
  std::string a;            // primary path
  std::string b;            // rename destination
  std::uint64_t offset = 0; // write/read
  std::uint64_t size = 0;   // write/append/truncate/read length
  std::uint64_t pattern = 0;  // payload seed for write/append
};

inline const char* fs_op_name(FsOp::Kind k) {
  switch (k) {
    case FsOp::kCreate: return "create";
    case FsOp::kMkdir: return "mkdir";
    case FsOp::kRemove: return "remove";
    case FsOp::kRename: return "rename";
    case FsOp::kWrite: return "write";
    case FsOp::kAppend: return "append";
    case FsOp::kTruncate: return "truncate";
    case FsOp::kRead: return "read";
    case FsOp::kFsync: return "fsync";
  }
  return "?";
}

inline ModelNode* model_find(ModelNode& root, const std::string& path) {
  ModelNode* n = &root;
  std::size_t at = 0;
  while (at < path.size()) {
    if (path[at] == '/') {
      ++at;
      continue;
    }
    const std::size_t end = std::min(path.find('/', at), path.size());
    const std::string name = path.substr(at, end - at);
    if (!n->dir) return nullptr;
    const auto it = n->kids.find(name);
    if (it == n->kids.end()) return nullptr;
    n = &it->second;
    at = end;
  }
  return n;
}

inline ModelNode* model_parent(ModelNode& root, const std::string& path,
                               std::string* leaf) {
  const std::size_t slash = path.find_last_of('/');
  *leaf = path.substr(slash + 1);
  return model_find(root, path.substr(0, slash));
}

inline void model_apply(ModelNode& root, const FsOp& op) {
  std::string leaf;
  switch (op.kind) {
    case FsOp::kCreate:
      model_parent(root, op.a, &leaf)->kids[leaf] = ModelNode{};
      break;
    case FsOp::kMkdir: {
      ModelNode d;
      d.dir = true;
      model_parent(root, op.a, &leaf)->kids[leaf] = std::move(d);
      break;
    }
    case FsOp::kRemove:
      model_parent(root, op.a, &leaf)->kids.erase(leaf);
      break;
    case FsOp::kRename: {
      ModelNode* from_parent = model_parent(root, op.a, &leaf);
      auto node = from_parent->kids.extract(leaf);
      ModelNode* to_parent = model_parent(root, op.b, &leaf);
      node.key() = leaf;
      to_parent->kids.insert(std::move(node));
      break;
    }
    case FsOp::kWrite:
    case FsOp::kAppend: {
      ModelNode* n = model_find(root, op.a);
      const std::uint64_t off =
          op.kind == FsOp::kAppend ? n->data.size() : op.offset;
      if (n->data.size() < off + op.size) n->data.resize(off + op.size);
      fill_pattern(std::span<std::byte>(n->data.data() + off, op.size),
                   op.pattern);
      break;
    }
    case FsOp::kTruncate:
      model_find(root, op.a)->data.resize(op.size);
      break;
    case FsOp::kRead:
    case FsOp::kFsync:
      break;
  }
}

/// Apply `op` to the real file system (kRead and the model check are the
/// caller's job — they need the model).
inline void fs_apply(MiniFs& f, const FsOp& op) {
  switch (op.kind) {
    case FsOp::kCreate:
      f.create(op.a);
      break;
    case FsOp::kMkdir:
      f.mkdir(op.a);
      break;
    case FsOp::kRemove:
      f.remove(op.a);
      break;
    case FsOp::kRename:
      f.rename(op.a, op.b);
      break;
    case FsOp::kWrite:
    case FsOp::kAppend: {
      std::vector<std::byte> bytes(op.size);
      fill_pattern(bytes, op.pattern);
      if (op.kind == FsOp::kWrite)
        f.write(op.a, op.offset, bytes);
      else
        f.append(op.a, bytes);
      break;
    }
    case FsOp::kTruncate:
      f.truncate(op.a, op.size);
      break;
    case FsOp::kRead:
      break;
    case FsOp::kFsync:
      f.fsync();
      break;
  }
}

inline void model_paths(const ModelNode& n, const std::string& p,
                        std::vector<std::string>* dirs,
                        std::vector<std::string>* files) {
  if (n.dir) {
    dirs->push_back(p.empty() ? "/" : p);
    for (const auto& [name, kid] : n.kids)
      model_paths(kid, p + "/" + name, dirs, files);
  } else {
    files->push_back(p);
  }
}

inline std::string path_join(const std::string& dir, const std::string& name) {
  return dir == "/" ? "/" + name : dir + "/" + name;
}

/// Workload-shaping caps.  The generator stays far below the file system's
/// block/inode capacity by construction: MiniFs ops are not exception-atomic
/// under ENOSPC-style contract violations, so a correctness fuzzer must not
/// trigger them (the wedge/capacity behavior is the block harness's beat).
struct GenCtx {
  std::uint64_t name_ctr = 0;
  std::uint64_t pat_ctr = 0;
  std::uint64_t sseed = 0;
  static constexpr std::uint64_t kMaxFileBytes = 120 * 1024;
  static constexpr std::size_t kMaxFiles = 32;
  static constexpr std::size_t kMaxDirs = 10;
  static constexpr int kMaxDepth = 3;
};

/// Generate the next valid operation.  Every draw is validated against the
/// model so the op cannot fail for namespace reasons; notably rename never
/// moves a directory into its own subtree (MiniFs accepts that and orphans
/// the subtree — a known sharp edge, excluded from generation the same way
/// real callers are expected to avoid it).
inline FsOp gen_op(Rng& rng, ModelNode& model, GenCtx& ctx) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::vector<std::string> dirs, files;
    model_paths(model, "", &dirs, &files);
    const std::uint64_t roll = rng.below(100);
    FsOp op;
    if (roll < 18) {  // create
      if (files.size() >= GenCtx::kMaxFiles) continue;
      const std::string& dir = dirs[rng.below(dirs.size())];
      op.kind = FsOp::kCreate;
      op.a = path_join(dir, "f" + std::to_string(ctx.name_ctr++));
      return op;
    } else if (roll < 26) {  // mkdir
      if (dirs.size() >= GenCtx::kMaxDirs) continue;
      const std::string& dir = dirs[rng.below(dirs.size())];
      const int depth =
          static_cast<int>(std::count(dir.begin(), dir.end(), '/'));
      if (depth >= GenCtx::kMaxDepth) continue;
      op.kind = FsOp::kMkdir;
      op.a = path_join(dir, "d" + std::to_string(ctx.name_ctr++));
      return op;
    } else if (roll < 48) {  // write (occasionally large → indirect block)
      if (files.empty()) continue;
      op.kind = FsOp::kWrite;
      op.a = files[rng.below(files.size())];
      const std::uint64_t cur = model_find(model, op.a)->data.size();
      op.size = rng.chance(0.12) ? 16384 + rng.below(65536)
                                 : 1 + rng.below(6000);
      op.offset = rng.below(cur + 2048);
      if (op.offset + op.size > GenCtx::kMaxFileBytes) {
        op.offset = 0;
        op.size = std::min(op.size, GenCtx::kMaxFileBytes);
      }
      op.pattern = fuzz_mix(ctx.sseed, ++ctx.pat_ctr);
      return op;
    } else if (roll < 58) {  // append
      if (files.empty()) continue;
      op.kind = FsOp::kAppend;
      op.a = files[rng.below(files.size())];
      const std::uint64_t cur = model_find(model, op.a)->data.size();
      op.size = 1 + rng.below(4000);
      if (cur + op.size > GenCtx::kMaxFileBytes) continue;
      op.pattern = fuzz_mix(ctx.sseed, ++ctx.pat_ctr);
      return op;
    } else if (roll < 66) {  // truncate (shrink or extend-with-hole)
      if (files.empty()) continue;
      op.kind = FsOp::kTruncate;
      op.a = files[rng.below(files.size())];
      const std::uint64_t cur = model_find(model, op.a)->data.size();
      op.size = rng.chance(0.5) ? rng.below(cur + 1)
                                : rng.below(GenCtx::kMaxFileBytes);
      return op;
    } else if (roll < 74) {  // remove
      if (files.empty()) continue;
      op.kind = FsOp::kRemove;
      op.a = files[rng.below(files.size())];
      return op;
    } else if (roll < 82) {  // rename (file or dir, fresh destination name)
      std::vector<std::string> movable = files;
      for (const std::string& d : dirs)
        if (d != "/") movable.push_back(d);
      if (movable.empty()) continue;
      const std::string& src = movable[rng.below(movable.size())];
      const std::string& dst_dir = dirs[rng.below(dirs.size())];
      // Never move a node into its own subtree (or onto itself).
      if (dst_dir == src ||
          (dst_dir.size() > src.size() &&
           dst_dir.compare(0, src.size(), src) == 0 &&
           dst_dir[src.size()] == '/'))
        continue;
      op.kind = FsOp::kRename;
      op.a = src;
      op.b = path_join(dst_dir, "r" + std::to_string(ctx.name_ctr++));
      return op;
    } else if (roll < 92) {  // read (checked live against the model)
      if (files.empty()) continue;
      op.kind = FsOp::kRead;
      op.a = files[rng.below(files.size())];
      const std::uint64_t cur = model_find(model, op.a)->data.size();
      op.offset = rng.below(cur + 1);
      op.size = 1 + rng.below(8192);
      return op;
    } else {
      op.kind = FsOp::kFsync;
      return op;
    }
  }
  return FsOp{};  // fsync — always valid
}

// --- Verification -----------------------------------------------------------

/// Compare the mounted tree under `path` against the model node.
inline bool tree_matches(MiniFs& f, const ModelNode& n, const std::string& path,
                         std::string* why) {
  const std::string at = path.empty() ? "/" : path;
  if (n.dir) {
    std::vector<std::string> names = f.list(at);
    std::sort(names.begin(), names.end());
    std::vector<std::string> want;
    want.reserve(n.kids.size());
    for (const auto& [name, kid] : n.kids) want.push_back(name);
    if (names != want) {
      *why = "directory " + at + " listing mismatch";
      return false;
    }
    for (const auto& [name, kid] : n.kids)
      if (!tree_matches(f, kid, path + "/" + name, why)) return false;
    return true;
  }
  const std::uint64_t size = f.file_size(at);
  if (size != n.data.size()) {
    *why = "file " + at + " size " + std::to_string(size) + " != model " +
           std::to_string(n.data.size());
    return false;
  }
  std::vector<std::byte> got(n.data.size());
  if (f.read(at, 0, got) != n.data.size()) {
    *why = "file " + at + " short read";
    return false;
  }
  if (fingerprint(got) != fingerprint(n.data)) {
    *why = "file " + at + " content mismatch";
    return false;
  }
  return true;
}

/// Compare the recovered block image against one candidate blkno→fingerprint
/// map; blocks in the universe but absent from the candidate must be zero.
inline bool image_matches(backend::TxnBackend& be,
                          const std::set<std::uint64_t>& universe,
                          const std::map<std::uint64_t, std::uint64_t>& cand,
                          std::uint64_t zero_fp, std::string* why) {
  std::vector<std::byte> got(blockdev::kBlockSize);
  for (const std::uint64_t blkno : universe) {
    be.read_block(blkno, got);
    const auto it = cand.find(blkno);
    const std::uint64_t want = it == cand.end() ? zero_fp : it->second;
    if (fingerprint(got) != want) {
      *why = "block " + std::to_string(blkno) + " mismatch";
      return false;
    }
  }
  return true;
}

/// Translate FsFuzzOptions into the shared FuzzOptions base so stack
/// construction and schedule tags come from fuzz_common.h unchanged.
inline backend::FuzzOptions fs_stack_opts(const FsFuzzOptions& o) {
  backend::FuzzOptions s;
  s.kind = o.kind;
  s.seed = o.seed;
  s.transient_read_rate = o.transient_read_rate;
  s.transient_write_rate = o.transient_write_rate;
  s.bad_sector_rate = o.bad_sector_rate;
  s.torn_write_rate = o.torn_write_rate;
  s.nvm_bytes = o.nvm_bytes;
  s.disk_blocks = o.disk_blocks;
  s.ring_bytes = o.ring_bytes;
  s.journal_blocks = o.journal_blocks;
  s.shards = o.shards;
  s.streams = o.streams;
  s.retry = o.retry;
  s.cleaner = o.cleaner;
  s.cleaner_low_water_pct = o.cleaner_low_water_pct;
  s.cleaner_high_water_pct = o.cleaner_high_water_pct;
  s.group_commit = o.group_commit;
  if (o.sabotage == FsSabotage::kCleanerSkipsFlush)
    s.sabotage = backend::FuzzSabotage::kCleanerSkipsFlush;
  if (o.sabotage == FsSabotage::kSkipCommitRecordFlush)
    s.sabotage = backend::FuzzSabotage::kSkipCommitRecordFlush;
  return s;
}

/// How one schedule's workload ended.
enum class ScheduleEnd : std::uint8_t { kClean, kCrashed, kIoError, kWedged };

/// Run one schedule end to end, folding results into `rep`.
///
///  * `script == nullptr` → generate ops from the schedule seed;
///    otherwise replay `*script` verbatim (sweep mode).
///  * `arm_kind`: 0 none, 1 random (draws from rng), 2 point@arm_step,
///    3 torn@arm_step.  Deterministic arms are set when op index
///    `mark_at_op` is reached (the injector counters reset there), so sweep
///    steps are relative to the start of the final mutation batch.
///  * `zero_faults` disables random disk faults (sweep mode: step numbering
///    must be identical across replays).
///
/// Returns the number of point()/point_torn() steps observed after
/// `mark_at_op` (used by the sweep's learning pass).
struct ScheduleOutcome {
  std::uint64_t marked_points = 0;
  std::uint64_t marked_torn = 0;
};

inline ScheduleOutcome run_fs_schedule(const FsFuzzOptions& opts,
                                       std::uint64_t sched,
                                       std::uint64_t sseed,
                                       const std::vector<FsOp>* script,
                                       int arm_kind, std::uint64_t arm_step,
                                       std::size_t mark_at_op,
                                       bool zero_faults, FsFuzzReport& rep) {
  ++rep.schedules;
  Rng rng(sseed);
  std::string armed = "none";
  const backend::FuzzOptions stack_opts = fs_stack_opts(opts);

  const auto record_violation = [&](const std::string& what) {
    ++rep.violations;
    if (rep.violation_messages.size() < 16) {
      rep.violation_messages.push_back(
          backend::fuzz_schedule_tag(stack_opts, sched, sseed, armed) + ": " +
          what + " | " + backend::fuzz_reproduce_tag(opts.seed, sched));
    }
  };

  std::vector<std::byte> zero_blk(blockdev::kBlockSize, std::byte{0});
  const std::uint64_t zero_fp = fingerprint(zero_blk);

  sim::SimClock clock;
  nvm::NvmDevice nvm(fs_nvm_bytes(opts.kind, opts.nvm_bytes),
                     nvdimm_profile(), clock);
  blockdev::MemBlockDevice mem(opts.disk_blocks);
  blockdev::FaultConfig fcfg;
  fcfg.seed = fuzz_mix(sseed, 0xFB02);
  if (!zero_faults) {
    fcfg.transient_read_rate = opts.transient_read_rate;
    fcfg.transient_write_rate = opts.transient_write_rate;
    fcfg.bad_sector_rate = opts.bad_sector_rate;
    fcfg.torn_write_rate = opts.torn_write_rate;
  }
  blockdev::FaultyBlockDevice disk(mem, fcfg, &clock, &nvm.injector);

  std::unique_ptr<backend::TxnBackend> be =
      backend::detail::fuzz_build(stack_opts, nvm, disk, false);
  RecordingBackend shim(*be);

  MiniFsConfig fscfg;
  fscfg.inode_count = opts.inode_count;
  fscfg.group_commit_ops = opts.group_commit_ops;

  const auto set_arm = [&] {
    if (arm_kind == 1 && rng.chance(opts.crash_prob)) {
      if (rng.chance(0.5)) {
        const std::uint64_t step = 1 + rng.below(600);
        nvm.injector.arm(step);
        armed = "point@" + std::to_string(step);
      } else {
        const std::uint64_t step = 1 + rng.below(60);
        nvm.injector.arm_torn(step);
        armed = "torn@" + std::to_string(step);
      }
    } else if (arm_kind == 2) {
      nvm.injector.arm(arm_step);
      armed = "point@" + std::to_string(arm_step);
    } else if (arm_kind == 3) {
      nvm.injector.arm_torn(arm_step);
      armed = "torn@" + std::to_string(arm_step);
    } else if (arm_kind == 0) {
      // Learning pass: reset both counters so steps are measured from here.
      nvm.injector.disarm();
      nvm.injector.disarm_torn();
    }
  };

  // --- mkfs -----------------------------------------------------------------
  // mark_at_op == 0 arms before mkfs (fuzz mode: mkfs itself is in scope).
  if (mark_at_op == 0) set_arm();

  std::unique_ptr<MiniFs> fsys;
  bool mkfs_done = false;
  ScheduleEnd end = ScheduleEnd::kClean;
  try {
    fsys = MiniFs::mkfs(shim, fscfg);
    mkfs_done = true;
  } catch (const nvm::CrashException&) {
    end = ScheduleEnd::kCrashed;
  } catch (const blockdev::IoError&) {
    end = ScheduleEnd::kIoError;
  } catch (const ContractViolation& e) {
    record_violation(std::string("mkfs failed: ") + e.what());
  }

  ModelNode live;
  live.dir = true;
  ModelNode committed_model = live;  // model at the last commit boundary
  std::uint64_t last_boundary = shim.boundaries();
  GenCtx ctx;
  ctx.sseed = sseed;
  FsOp last_op;  // the op interrupted by a crash (if any)
  bool op_in_flight = false;

  // Snapshot oracle (DESIGN.md §12): pin one fsync boundary mid-workload
  // and hold it across later compound commits; every pinned block read must
  // keep returning that boundary's image even while the tree churns on.
  bool snap_open = false;
  std::uint64_t snap_token = 0;
  std::uint64_t snap_close_boundary = 0;
  std::map<std::uint64_t, std::uint64_t> snap_frozen;
  std::vector<std::byte> snap_buf(blockdev::kBlockSize);

  // --- workload -------------------------------------------------------------
  if (mkfs_done) {
    const std::size_t total_ops =
        script ? script->size() : opts.ops_per_schedule;
    try {
      for (std::size_t i = 0; i < total_ops; ++i) {
        if (i == mark_at_op && mark_at_op != 0) set_arm();
        FsOp op = script ? (*script)[i] : gen_op(rng, live, ctx);
        last_op = op;
        op_in_flight = true;
        if (op.kind == FsOp::kRead) {
          std::vector<std::byte> got(op.size);
          const std::size_t nread = fsys->read(op.a, op.offset, got);
          const ModelNode* n = model_find(live, op.a);
          const std::uint64_t msize = n->data.size();
          const std::size_t expect =
              op.offset >= msize
                  ? 0
                  : static_cast<std::size_t>(
                        std::min<std::uint64_t>(op.size, msize - op.offset));
          if (nread != expect ||
              (expect != 0 &&
               std::memcmp(got.data(), n->data.data() + op.offset, expect) !=
                   0)) {
            record_violation("live read of " + op.a +
                             " disagrees with the model");
            break;
          }
        } else {
          fs_apply(*fsys, op);
          model_apply(live, op);
        }
        op_in_flight = false;
        ++rep.ops_executed;
        if (shim.boundaries() != last_boundary) {
          last_boundary = shim.boundaries();
          committed_model = live;  // new fsync boundary reached
        }
        // Snapshot oracle — fuzz mode only: the sweep's step numbering must
        // stay identical across its learning and replay passes, and pinned
        // snapshots shift when deferred writebacks reach the disk.
        if (!script && shim.supports_snapshots()) {
          if (!snap_open && shim.boundaries() != 0 && rng.chance(0.15)) {
            snap_token = shim.snapshot_open();
            snap_frozen = shim.committed();
            snap_open = true;
            snap_close_boundary = shim.boundaries() + 2;
          } else if (snap_open) {
            bool snap_bad = false;
            for (int probe = 0; probe < 2 && !shim.universe().empty();
                 ++probe) {
              auto it = shim.universe().begin();
              std::advance(it,
                           static_cast<long>(rng.below(shim.universe().size())));
              shim.snapshot_read(snap_token, *it, snap_buf);
              const auto want = snap_frozen.find(*it);
              const std::uint64_t want_fp =
                  want == snap_frozen.end() ? zero_fp : want->second;
              if (fingerprint(snap_buf) != want_fp) {
                record_violation(
                    "snapshot read of block " + std::to_string(*it) +
                    " is not the pinned fsync-boundary image");
                snap_bad = true;
                break;
              }
            }
            if (snap_bad) break;
            if (shim.boundaries() >= snap_close_boundary) {
              shim.snapshot_close(snap_token);
              snap_open = false;
            }
          }
        }
      }
      if (end == ScheduleEnd::kClean && !script) {
        // Close the history at a boundary so the clean path verifies a
        // well-defined state (sweep scripts end with their own fsync).
        fsys->fsync();
      }
      if (shim.boundaries() != last_boundary) {
        last_boundary = shim.boundaries();
        committed_model = live;
      }
    } catch (const nvm::CrashException&) {
      end = ScheduleEnd::kCrashed;
    } catch (const blockdev::IoError&) {
      end = ScheduleEnd::kIoError;
    } catch (const ContractViolation& e) {
      if (std::string(e.what()).find("wedged") != std::string::npos) {
        end = ScheduleEnd::kWedged;
      } else {
        record_violation(std::string(fs_op_name(last_op.kind)) +
                         " failed: " + e.what());
      }
    }
  }

  ScheduleOutcome out;
  out.marked_points = nvm.injector.steps_seen();
  out.marked_torn = nvm.injector.torn_steps_seen();

  // Release any open snapshot before verification: pins defer disk
  // writebacks, and fsck plus the image check should run unthrottled.
  if (snap_open) {
    try {
      shim.snapshot_close(snap_token);
    } catch (const std::exception&) {
    }
    snap_open = false;
  }

  // Stop injecting *new* faults; already-bad sectors keep failing.
  nvm.injector.disarm();
  nvm.injector.disarm_torn();
  disk.quiesce();
  {
    backend::FuzzReport io;
    backend::detail::fuzz_collect(stack_opts, *be, io);
    rep.io_retries += io.io_retries;
    rep.io_quarantined += io.io_quarantined;
    rep.io_degraded_writes += io.io_degraded_writes;
  }
  rep.txns_committed += shim.boundaries();

  if (end == ScheduleEnd::kWedged) {
    ++rep.wedges;
    backend::detail::fuzz_fold_faults(rep.faults, disk.fault_stats());
    return out;
  }
  if (rep.violations != 0 && rep.violation_messages.size() >= 16) {
    // Campaign is already drowning; skip the expensive verification.
    backend::detail::fuzz_fold_faults(rep.faults, disk.fault_stats());
    return out;
  }

  // --- crash / recovery -----------------------------------------------------
  // The interrupted op (if any) defines the "committed + 1" candidate: if
  // the cut landed mid-commit and the commit actually published, the visible
  // tree is the model *with* that op applied.
  const bool interrupted =
      end == ScheduleEnd::kCrashed || end == ScheduleEnd::kIoError;
  if (end == ScheduleEnd::kCrashed) {
    ++rep.crashes;
    if (!mkfs_done) ++rep.mkfs_crashes;
    static constexpr double kSurvive[] = {0.0, 0.3, 0.7, 1.0};
    nvm.crash(rng, kSurvive[rng.below(4)]);
  }
  if (end == ScheduleEnd::kIoError) ++rep.io_errors;

  bool remounted = false;
  if (interrupted) {
    fsys.reset();
    be.reset();
    try {
      be = backend::detail::fuzz_build(stack_opts, nvm, disk, true);
    } catch (const std::exception& e) {
      record_violation(std::string("recovery failed: ") + e.what());
      backend::detail::fuzz_fold_faults(rep.faults, disk.fault_stats());
      return out;
    }
    remounted = true;
    // NvLog stacks: the log tier's metadata — superblock + watermark record
    // ring (DESIGN.md §16) — must still decode and hold a mountable winning
    // record after the crash.  A torn record cut is acceptable only because
    // an older valid record survives in another ring slot.
    if (end == ScheduleEnd::kCrashed &&
        (opts.kind == backend::StackKind::kNvLogClassic ||
         opts.kind == backend::StackKind::kNvLogTinca ||
         opts.kind == backend::StackKind::kNvLogSharded)) {
      nvm::NvmDevice logv(nvm, 0, backend::detail::kFuzzLogBytes, clock);
      const core::MediaReport mr = core::verify_nvlog_media(logv);
      if (!mr.ok) {
        record_violation("verify_nvlog_media: " +
                         (mr.problems.empty() ? std::string("not ok")
                                              : mr.problems.front()));
      }
    }
  }

  // --- sabotage (oracle self-test, clean schedules only) --------------------
  // kCleanerSkipsFlush is not handled here: it is a continuous stack-level
  // sabotage (armed via the cleaner config in fs_stack_opts), not a one-shot
  // block overwrite.
  if (!interrupted && mkfs_done &&
      (opts.sabotage == FsSabotage::kCorruptData ||
       opts.sabotage == FsSabotage::kCorruptBitmap)) {
    try {
      const MiniFs::Geometry& g = fsys->geometry();
      std::vector<std::byte> junk(blockdev::kBlockSize);
      fill_pattern(junk, fuzz_mix(sseed, 0x5AB0));
      if (opts.sabotage == FsSabotage::kCorruptData) {
        // Highest committed data block — some file's payload or a directory.
        std::uint64_t victim = 0;
        for (const auto& [blkno, fp] : shim.committed())
          if (blkno >= g.data_start) victim = blkno;
        if (victim != 0) shim.sabotage_block(victim, junk);
      } else {
        shim.sabotage_block(g.bbmap_start, junk);
      }
      // The corruption lives on media; MiniFs's in-DRAM bitmaps and the
      // backend cache would mask it, so force the remount path below.
      fsys.reset();
      be.reset();
      be = backend::detail::fuzz_build(stack_opts, nvm, disk, true);
      remounted = true;
    } catch (const std::exception& e) {
      record_violation(std::string("sabotage setup failed: ") + e.what());
      backend::detail::fuzz_fold_faults(rep.faults, disk.fault_stats());
      return out;
    }
  }

  // --- verification ---------------------------------------------------------
  try {
    // Candidate block images, most-committed first.  role: 0 = committed
    // boundary, 1 = committed + interrupted txn (also a boundary).  Both
    // are fsync boundaries — there are no block-consistent-but-mid-commit
    // states any more: a cross-shard transaction commits atomically through
    // the §15 commit record, so shard-prefix images are violations.
    struct Cand {
      std::map<std::uint64_t, std::uint64_t> image;
      int role;
    };
    std::vector<Cand> cands;
    cands.push_back({shim.committed(), 0});
    if (interrupted && !shim.pending().empty()) {
      std::map<std::uint64_t, std::uint64_t> full = shim.committed();
      for (const auto& [blkno, fp] : shim.pending()) full[blkno] = fp;
      cands.push_back({std::move(full), 1});
    }

    int matched_role = -1;
    std::string why;
    for (const Cand& c : cands) {
      if (image_matches(*be, shim.universe(), c.image, zero_fp, &why)) {
        matched_role = c.role;
        break;
      }
    }
    if (matched_role < 0) {
      record_violation("recovered image matches no acceptable history (" +
                       why + ")");
      backend::detail::fuzz_fold_faults(rep.faults, disk.fault_stats());
      return out;
    }

    if (!mkfs_done) {
      // Crash during mkfs: the image is consistent; the volume is only
      // required to mount if the *final* mkfs transaction (superblock +
      // root) published.  A failed mount of a half-formatted device is the
      // documented outcome, not a violation.
      try {
        std::unique_ptr<MiniFs> m = MiniFs::mount(*be, fscfg);
        ++rep.fsck_runs;
        const FsckReport fr = m->fsck();
        if (!fr.ok) {
          ++rep.fsck_dirty;
          record_violation("fsck dirty after mkfs crash: " + fr.summary());
        } else if (!m->list("/").empty()) {
          record_violation("mkfs crash recovered to a non-empty root");
        }
      } catch (const ContractViolation&) {
        // Not a mountable MiniFs volume — acceptable for a torn format.
      }
      backend::detail::fuzz_fold_faults(rep.faults, disk.fault_stats());
      return out;
    }

    // Full fsync boundary: the mounted tree must equal the model snapshot.
    // A crash can also land *after* a commit published but before the op
    // returned — e.g., inside the cleaner's post-commit quantum.  Then the
    // pending set is empty but the boundary count advanced past the last
    // snapshot, and the new boundary's tree is the live model plus the
    // interrupted op (MiniFs commits are the final mutating action of an
    // op), i.e. exactly the role-1 construction.
    const bool committed_then_crashed =
        matched_role == 0 && interrupted && shim.boundaries() != last_boundary;
    const ModelNode* want = &committed_model;
    ModelNode committed_plus;
    if (matched_role == 1 || committed_then_crashed) {
      // The interrupted txn carries every op since the previous boundary,
      // ending with the in-flight one: that is exactly the live model (plus
      // the interrupted op, which validated against the live model).
      committed_plus = live;
      if (op_in_flight && last_op.kind != FsOp::kRead &&
          last_op.kind != FsOp::kFsync) {
        model_apply(committed_plus, last_op);
      }
      want = &committed_plus;
    }

    if (interrupted || remounted) {
      fsys = MiniFs::mount(*be, fscfg);
    }
    ++rep.fsck_runs;
    const FsckReport fr = fsys->fsck();
    if (!fr.ok) {
      ++rep.fsck_dirty;
      record_violation("fsck dirty: " + fr.summary());
    }
    if (!tree_matches(*fsys, *want, "", &why)) {
      record_violation("recovered tree diverges from the model (" + why + ")");
    }
    if (!interrupted && !remounted) {
      // Live instance already verified; also exercise the crash-free
      // recover+mount round trip half the time.
      if (rng.chance(0.5)) {
        ++rep.clean_remounts;
        fsys.reset();
        be.reset();
        be = backend::detail::fuzz_build(stack_opts, nvm, disk, true);
        fsys = MiniFs::mount(*be, fscfg);
        ++rep.fsck_runs;
        const FsckReport fr2 = fsys->fsck();
        if (!fr2.ok) {
          ++rep.fsck_dirty;
          record_violation("fsck dirty after clean remount: " + fr2.summary());
        }
        if (!tree_matches(*fsys, *want, "", &why)) {
          record_violation("clean remount lost data (" + why + ")");
        }
      }
    }
  } catch (const std::exception& e) {
    record_violation(std::string("verification threw: ") + e.what());
  }

  backend::detail::fuzz_fold_faults(rep.faults, disk.fault_stats());
  return out;
}

/// Fixed op script for the crash-point sweep: a committed setup phase, then
/// one batch of mutations (rename, shrinking truncate, append, remove,
/// create+write) staged into a single compound transaction and committed by
/// the final fsync.  `batch_at` receives the index of the first batch op —
/// the sweep arms (and the learning pass measures) from there.
inline std::vector<FsOp> sweep_script(std::uint64_t seed,
                                      std::size_t* batch_at) {
  const auto pat = [seed](std::uint64_t k) { return fuzz_mix(seed, k); };
  const auto w = [&](const char* path, std::uint64_t off, std::uint64_t len,
                     std::uint64_t k) {
    FsOp op;
    op.kind = FsOp::kWrite;
    op.a = path;
    op.offset = off;
    op.size = len;
    op.pattern = pat(k);
    return op;
  };
  const auto simple = [](FsOp::Kind kind, const char* a, const char* b = "") {
    FsOp op;
    op.kind = kind;
    op.a = a;
    op.b = b;
    return op;
  };
  std::vector<FsOp> script;
  // Setup: two directories, four files (one spilling into its single
  // indirect block), fsync'd in small groups so setup spans several
  // committed transactions.
  script.push_back(simple(FsOp::kMkdir, "/d0"));
  script.push_back(simple(FsOp::kMkdir, "/d1"));
  script.push_back(simple(FsOp::kFsync, ""));
  script.push_back(simple(FsOp::kCreate, "/d0/a"));
  script.push_back(w("/d0/a", 0, 30 * 1024, 1));
  script.push_back(simple(FsOp::kFsync, ""));
  script.push_back(simple(FsOp::kCreate, "/d0/b"));
  script.push_back(w("/d0/b", 0, 90 * 1024, 2));  // > 48 KB → indirect
  script.push_back(simple(FsOp::kFsync, ""));
  script.push_back(simple(FsOp::kCreate, "/d1/c"));
  script.push_back(w("/d1/c", 0, 6000, 3));
  script.push_back(simple(FsOp::kCreate, "/big"));
  script.push_back(w("/big", 0, 100 * 1024, 4));
  script.push_back(simple(FsOp::kFsync, ""));
  *batch_at = script.size();
  // Mutation batch: every structural op class in one compound commit.
  script.push_back(w("/d0/a", 1000, 9000, 5));
  script.push_back(simple(FsOp::kRename, "/d0/a", "/d1/a2"));
  FsOp tr;
  tr.kind = FsOp::kTruncate;
  tr.a = "/d0/b";
  tr.size = 8 * 1024;  // shrinks back out of the indirect block
  script.push_back(tr);
  FsOp ap;
  ap.kind = FsOp::kAppend;
  ap.a = "/d1/c";
  ap.size = 5000;
  ap.pattern = pat(6);
  script.push_back(ap);
  script.push_back(simple(FsOp::kRemove, "/big"));
  script.push_back(simple(FsOp::kCreate, "/d0/new"));
  script.push_back(w("/d0/new", 0, 4096, 7));
  script.push_back(simple(FsOp::kFsync, ""));
  return script;
}

}  // namespace detail

/// Run the randomized campaign.  Never throws for injected faults — every
/// anomaly is classified into the report.
inline FsFuzzReport run_fs_fuzz(const FsFuzzOptions& opts) {
  FsFuzzReport rep;
  const std::uint64_t last =
      static_cast<std::uint64_t>(opts.first_schedule) + opts.schedules;
  for (std::uint64_t sched = opts.first_schedule; sched < last; ++sched) {
    const std::uint64_t sseed = detail::fuzz_mix(opts.seed, sched);
    detail::run_fs_schedule(opts, sched, sseed, nullptr, /*arm_kind=*/1,
                            /*arm_step=*/0, /*mark_at_op=*/0,
                            /*zero_faults=*/false, rep);
  }
  return rep;
}

/// Crash-point sweep: replay one fixed script (fault-free, so step numbering
/// is stable), learning how many NVM-store points and torn disk-write sites
/// the final mutation batch + compound commit passes, then re-run once per
/// step (stride-able) with the injector armed exactly there.  Covers every
/// persistence site inside one compound commit, plus the cache traffic of
/// staging it.
inline FsFuzzReport run_fs_crash_sweep(const FsFuzzOptions& opts,
                                       std::uint32_t stride = 1) {
  FsFuzzReport rep;
  std::size_t batch_at = 0;
  const std::vector<detail::FsOp> script =
      detail::sweep_script(opts.seed, &batch_at);
  const std::uint32_t step_stride = std::max<std::uint32_t>(1, stride);

  // Learning pass: run clean, counters reset at the batch boundary.
  const detail::ScheduleOutcome learn = detail::run_fs_schedule(
      opts, /*sched=*/0, detail::fuzz_mix(opts.seed, 0xD0), &script,
      /*arm_kind=*/0, /*arm_step=*/0, batch_at, /*zero_faults=*/true, rep);
  rep.sweep_points = learn.marked_points;
  rep.sweep_torn_points = learn.marked_torn;

  for (std::uint64_t step = 1; step <= learn.marked_points;
       step += step_stride) {
    detail::run_fs_schedule(opts, step, detail::fuzz_mix(opts.seed, step),
                            &script, /*arm_kind=*/2, step, batch_at,
                            /*zero_faults=*/true, rep);
  }
  for (std::uint64_t step = 1; step <= learn.marked_torn;
       step += step_stride) {
    detail::run_fs_schedule(opts, step,
                            detail::fuzz_mix(opts.seed, 0x70000000ULL + step),
                            &script, /*arm_kind=*/3, step, batch_at,
                            /*zero_faults=*/true, rep);
  }
  return rep;
}

}  // namespace tinca::fs
