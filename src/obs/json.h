// Minimal JSON document model: build, serialize, parse.
//
// The observability layer emits three kinds of machine-readable output —
// metrics dumps, bench result files and Chrome trace files — and the test
// suite must parse each of them back to prove well-formedness.  The
// container deliberately has no JSON dependency, so this is a small
// self-contained DOM (insertion-ordered objects, doubles for numbers) with
// a strict recursive-descent parser.  It is *not* a general-purpose JSON
// library: numbers are IEEE doubles (exact for integers below 2^53, far
// beyond any counter a bench run produces), and \uXXXX escapes outside the
// Basic Latin range decode to '?'.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tinca::obs {

/// One JSON value; objects preserve insertion order so dumps are stable.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null

  static Json object() { return Json(Type::kObject); }
  static Json array() { return Json(Type::kArray); }
  static Json str(std::string s) {
    Json j(Type::kString);
    j.str_ = std::move(s);
    return j;
  }
  static Json number(double v) {
    Json j(Type::kNumber);
    j.num_ = v;
    return j;
  }
  static Json number(std::uint64_t v) { return number(static_cast<double>(v)); }
  static Json boolean(bool b) {
    Json j(Type::kBool);
    j.bool_ = b;
    return j;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }

  // --- Building ------------------------------------------------------------

  /// Object: set `key` to `v` (appends; keys are not deduplicated).
  Json& set(std::string key, Json v);

  /// Array: append an element.
  Json& push(Json v);

  // --- Access --------------------------------------------------------------

  /// Object member lookup (first match); nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;

  [[nodiscard]] const std::vector<Json>& items() const { return items_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const {
    return members_;
  }
  [[nodiscard]] double num() const { return num_; }
  [[nodiscard]] const std::string& str_value() const { return str_; }
  [[nodiscard]] bool bool_value() const { return bool_; }

  // --- Serialize / parse ---------------------------------------------------

  /// Serialize; `indent` > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Strict parse of a complete document; nullopt on any syntax error or
  /// trailing garbage.
  static std::optional<Json> parse(std::string_view text);

  /// Escape a string for embedding in JSON output (no surrounding quotes).
  static std::string escape(std::string_view s);

 private:
  explicit Json(Type t) : type_(t) {}
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;                               ///< array elements
  std::vector<std::pair<std::string, Json>> members_;     ///< object members
};

}  // namespace tinca::obs
