#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace tinca::obs {

// ---------------------------------------------------------------------------
// TraceSink
// ---------------------------------------------------------------------------

void TraceSink::add_complete(const std::string& name, int pid, int tid,
                             std::uint64_t ts_ns, std::uint64_t dur_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, pid, tid, ts_ns, dur_ns});
}

void TraceSink::set_track_name(int pid, int tid, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  tracks_.emplace_back(std::make_pair(pid, tid), std::move(name));
}

std::size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceSink::to_chrome_json() const {
  std::vector<Event> events;
  std::vector<std::pair<std::pair<int, int>, std::string>> tracks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
    tracks = tracks_;
  }
  // Chrome sorts tolerantly, but emitting each (pid, tid) track in
  // timestamp order keeps the file trivially checkable and diff-friendly.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_ns < b.ts_ns;
                   });

  Json arr = Json::array();
  // Track metadata first: process names for the two time bases, then any
  // caller-provided thread-track names.
  for (int pid : {kVirtualPid, kHostPid}) {
    Json meta = Json::object();
    meta.set("name", Json::str("process_name"));
    meta.set("ph", Json::str("M"));
    meta.set("pid", Json::number(static_cast<double>(pid)));
    Json args = Json::object();
    args.set("name", Json::str(pid == kVirtualPid ? "virtual-time (SimClock)"
                                                  : "host wall-clock"));
    meta.set("args", std::move(args));
    arr.push(std::move(meta));
  }
  for (const auto& [track, name] : tracks) {
    Json meta = Json::object();
    meta.set("name", Json::str("thread_name"));
    meta.set("ph", Json::str("M"));
    meta.set("pid", Json::number(static_cast<double>(track.first)));
    meta.set("tid", Json::number(static_cast<double>(track.second)));
    Json args = Json::object();
    args.set("name", Json::str(name));
    meta.set("args", std::move(args));
    arr.push(std::move(meta));
  }
  for (const Event& e : events) {
    Json ev = Json::object();
    ev.set("name", Json::str(e.name));
    ev.set("ph", Json::str("X"));
    ev.set("pid", Json::number(static_cast<double>(e.pid)));
    ev.set("tid", Json::number(static_cast<double>(e.tid)));
    // Chrome expects microseconds; keep nanosecond resolution as a fraction.
    ev.set("ts", Json::number(static_cast<double>(e.ts_ns) / 1000.0));
    ev.set("dur", Json::number(static_cast<double>(e.dur_ns) / 1000.0));
    arr.push(std::move(ev));
  }

  Json doc = Json::object();
  doc.set("traceEvents", std::move(arr));
  doc.set("displayTimeUnit", Json::str("ns"));
  return doc.dump(1);
}

bool TraceSink::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_chrome_json() << '\n';
  return static_cast<bool>(out);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer::Site* Tracer::site(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Site& s : sites_)
    if (s.name == name) return &s;
  sites_.push_back(Site{std::string(name), Histogram{}});
  return &sites_.back();
}

std::uint64_t Tracer::now_ns() const {
  if (clock_ != nullptr) return clock_->now();
  // Host base: steady-clock ns since the first sample in this process, so
  // wall-clock tracks start near zero like the virtual ones.
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - epoch)
          .count());
}

int Tracer::event_tid() const {
  if (clock_ != nullptr) return tid_;
  // Wall-clock tracers serve many threads: one dense host-thread id each.
  static std::atomic<int> next_tid{0};
  thread_local const int tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void Tracer::record(Site& site, std::uint64_t t0_ns, std::uint64_t t1_ns) {
  const std::uint64_t dur = t1_ns - t0_ns;
  if (concurrent_) {
    std::lock_guard<std::mutex> lock(mu_);
    site.hist.record(dur);
  } else {
    site.hist.record(dur);
  }
  TraceSink* sink = sink_;
  if (sink != nullptr)
    sink->add_complete(event_prefix_ + site.name,
                       clock_ != nullptr ? kVirtualPid : kHostPid,
                       event_tid(), t0_ns, dur);
}

const Histogram* Tracer::histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Site& s : sites_)
    if (s.name == name) return &s.hist;
  return nullptr;
}

void Tracer::register_into(MetricsRegistry& reg,
                           const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Site& s : sites_) reg.add_histogram(prefix + s.name, &s.hist);
}

}  // namespace tinca::obs
