// Scoped per-operation trace spans and Chrome-trace emission.
//
// Two consumers share one instrumentation point:
//
//   1. **latency histograms** — every named span site owns a Histogram of
//      span durations, so a bench can report p50/p95/p99 commit latency
//      without touching the code it measures;
//   2. **trace events** — when a TraceSink is attached, each finished span
//      additionally appends a Chrome `about:tracing` complete event
//      ("ph":"X") with process/thread track ids, so shard interleavings and
//      lock convoys become visible in a trace viewer.
//
// Cost discipline: a disabled tracer (the default) costs exactly one branch
// per span — the constructor checks `enabled()` and leaves the span inert.
// An enabled tracer without a sink records one histogram sample; the sink
// check is a single null test.  Defining TINCA_OBS_DISABLE_TRACING (CMake
// option TINCA_OBS_TRACING=OFF) compiles TINCA_TRACE_SPAN away entirely.
//
// Time bases: each Tracer samples either a SimClock (virtual ns — the right
// base for per-shard device-level latency, matching every other number the
// benches report) or the host steady clock (wall ns — the right base for
// the sharded front-end's lock phases, which virtual clocks cannot see
// because lock waits charge no device time).  The two bases are kept on
// separate Chrome *process* tracks (kVirtualPid vs kHostPid) so a viewer
// never splices them into one timeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/sim_clock.h"

namespace tinca::obs {

class MetricsRegistry;

/// Chrome process-track id for virtual-time (SimClock) tracers; thread
/// tracks inside it are shard ids.
inline constexpr int kVirtualPid = 1;
/// Chrome process-track id for wall-clock tracers; thread tracks inside it
/// are host threads (small dense ids, assigned on first use).
inline constexpr int kHostPid = 2;

/// Thread-safe collector of Chrome trace events.  Attach one sink to any
/// number of tracers; `to_chrome_json()` emits the standard
/// {"traceEvents": [...]} document with per-track metadata, events sorted
/// by (pid, tid, ts) so every track is monotonically timestamped.
class TraceSink {
 public:
  /// Append one complete ("ph":"X") event.  Thread-safe.
  void add_complete(const std::string& name, int pid, int tid,
                    std::uint64_t ts_ns, std::uint64_t dur_ns);

  /// Name a (pid, tid) track in the viewer (emitted as metadata events).
  void set_track_name(int pid, int tid, std::string name);

  /// Events collected so far.
  [[nodiscard]] std::size_t event_count() const;

  /// Serialize to Chrome about:tracing JSON (ts/dur in microseconds).
  [[nodiscard]] std::string to_chrome_json() const;

  /// Write to a file; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    int pid;
    int tid;
    std::uint64_t ts_ns;
    std::uint64_t dur_ns;
  };

  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::vector<std::pair<std::pair<int, int>, std::string>> tracks_;
};

/// Per-component span factory: owns the named sites (histogram + name) and
/// the enable/sink state.  One tracer per instrumented instance; sites are
/// interned once at construction time so the hot path never hashes a name.
class Tracer {
 public:
  /// A named span site.  `hist` accumulates span durations in the tracer's
  /// time base (ns).  Stable address for the lifetime of the tracer.
  struct Site {
    std::string name;
    Histogram hist;
  };

  /// Virtual-time tracer: timestamps read from `clock`, events land on
  /// thread track `tid` of the kVirtualPid process track.  Single-threaded
  /// callers only (per-shard state, like the stats structs next to it).
  /// `event_prefix` is prepended to site names in emitted trace events
  /// ("tinca." + "commit" → "tinca.commit").
  explicit Tracer(const sim::SimClock& clock, int tid = 0,
                  std::string event_prefix = {})
      : clock_(&clock),
        tid_(tid),
        concurrent_(false),
        event_prefix_(std::move(event_prefix)) {}

  /// Wall-clock tracer for code driven by many threads at once: timestamps
  /// from the host steady clock, events land on one kHostPid thread track
  /// per calling thread, histogram updates are mutex-guarded.
  explicit Tracer(std::string event_prefix = {})
      : clock_(nullptr),
        tid_(0),
        concurrent_(true),
        event_prefix_(std::move(event_prefix)) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Intern a span site (idempotent per name).  Call at construction time,
  /// keep the pointer, pass it to TINCA_TRACE_SPAN.
  Site* site(std::string_view name);

  /// Turn histogram recording on/off.  Off (the default) makes every span
  /// inert at the cost of one branch.
  void enable(bool on = true) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Attach a sink (nullptr detaches) and enable recording.
  void attach_sink(TraceSink* sink) {
    sink_ = sink;
    if (sink != nullptr) enable();
  }
  [[nodiscard]] TraceSink* sink() const { return sink_; }

  /// Current timestamp in this tracer's time base (ns).
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Record a finished span (called by TraceSpan's destructor).
  void record(Site& site, std::uint64_t t0_ns, std::uint64_t t1_ns);

  /// Histogram of a site by name; nullptr when never interned.
  [[nodiscard]] const Histogram* histogram(std::string_view name) const;

  /// Register every site's histogram into `reg` as `<prefix><site name>`.
  void register_into(MetricsRegistry& reg, const std::string& prefix) const;

  /// Reassign the virtual-time thread track id (used by the sharded
  /// front-end to give each shard its own track).
  void set_tid(int tid) { tid_ = tid; }
  [[nodiscard]] int tid() const { return tid_; }

 private:
  [[nodiscard]] int event_tid() const;

  const sim::SimClock* clock_;  ///< nullptr → host steady clock
  int tid_;
  const bool concurrent_;  ///< guard histogram updates with mu_
  std::string event_prefix_;
  std::atomic<bool> enabled_ = false;
  TraceSink* sink_ = nullptr;
  std::deque<Site> sites_;  ///< deque: stable Site addresses
  mutable std::mutex mu_;
};

/// RAII span: samples the tracer's clock at construction and destruction,
/// records the duration into the site's histogram, and emits a trace event
/// when a sink is attached.  Inert (one branch) when the tracer is disabled.
class TraceSpan {
 public:
  TraceSpan(Tracer& tracer, Tracer::Site* site) {
    if (tracer.enabled()) {
      tracer_ = &tracer;
      site_ = site;
      t0_ns_ = tracer.now_ns();
    }
  }

  ~TraceSpan() {
    if (tracer_ != nullptr) tracer_->record(*site_, t0_ns_, tracer_->now_ns());
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  Tracer::Site* site_ = nullptr;
  std::uint64_t t0_ns_ = 0;
};

#define TINCA_OBS_CONCAT_INNER(a, b) a##b
#define TINCA_OBS_CONCAT(a, b) TINCA_OBS_CONCAT_INNER(a, b)

#if defined(TINCA_OBS_DISABLE_TRACING)
/// Tracing compiled out: zero code at every span site.
#define TINCA_TRACE_SPAN(tracer, site) ((void)0)
#else
/// Scoped trace span: `TINCA_TRACE_SPAN(trace_, site_commit_);`
#define TINCA_TRACE_SPAN(tracer, site)                        \
  ::tinca::obs::TraceSpan TINCA_OBS_CONCAT(tinca_trace_span_, \
                                           __LINE__)(tracer, site)
#endif

}  // namespace tinca::obs
