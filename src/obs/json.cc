#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace tinca::obs {

// ---------------------------------------------------------------------------
// Building / access
// ---------------------------------------------------------------------------

Json& Json::set(std::string key, Json v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  members_.emplace_back(std::move(key), std::move(v));
  return *this;
}

Json& Json::push(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  items_.push_back(std::move(v));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

std::string Json::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; clamp to null
    out += "null";
    return;
  }
  // Integers up to 2^53 print exactly, without a trailing ".0".
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
  }
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, num_); break;
    case Type::kString:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        append_newline_indent(out, indent, depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) append_newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        append_newline_indent(out, indent, depth + 1);
        out += '"';
        out += escape(members_[i].first);
        out += "\":";
        if (indent > 0) out += ' ';
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) append_newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing (strict recursive descent)
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<Json> value() {
    if (++depth_ > kMaxDepth) return std::nullopt;
    skip_ws();
    if (pos_ >= text_.size()) return fail();
    std::optional<Json> r;
    switch (text_[pos_]) {
      case '{': r = object(); break;
      case '[': r = array(); break;
      case '"': {
        auto s = string();
        if (s) r = Json::str(std::move(*s));
        break;
      }
      case 't': r = literal("true") ? std::optional(Json::boolean(true)) : std::nullopt; break;
      case 'f': r = literal("false") ? std::optional(Json::boolean(false)) : std::nullopt; break;
      case 'n': r = literal("null") ? std::optional(Json()) : std::nullopt; break;
      default: r = number(); break;
    }
    --depth_;
    return r;
  }

  std::optional<Json> fail() { return std::nullopt; }

  std::optional<Json> object() {
    if (!eat('{')) return fail();
    Json obj = Json::object();
    skip_ws();
    if (eat('}')) return obj;
    while (true) {
      skip_ws();
      auto key = string();
      if (!key) return fail();
      if (!eat(':')) return fail();
      auto v = value();
      if (!v) return fail();
      obj.set(std::move(*key), std::move(*v));
      if (eat(',')) continue;
      if (eat('}')) return obj;
      return fail();
    }
  }

  std::optional<Json> array() {
    if (!eat('[')) return fail();
    Json arr = Json::array();
    skip_ws();
    if (eat(']')) return arr;
    while (true) {
      auto v = value();
      if (!v) return fail();
      arr.push(std::move(*v));
      if (eat(',')) continue;
      if (eat(']')) return arr;
      return fail();
    }
  }

  std::optional<std::string> string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return std::nullopt;
            }
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: return std::nullopt;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return std::nullopt;  // raw control character inside a string
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t int_start = pos_;
    std::size_t digits = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      ++digits;
    }
    if (digits == 0) return std::nullopt;
    if (digits > 1 && text_[int_start] == '0')
      return std::nullopt;  // leading zero ("01") is not JSON
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      std::size_t frac = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++frac;
      }
      if (frac == 0) return std::nullopt;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      std::size_t exp = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++exp;
      }
      if (exp == 0) return std::nullopt;
    }
    double v = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (res.ec != std::errc{}) return std::nullopt;
    return Json::number(v);
  }

  static constexpr int kMaxDepth = 64;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace tinca::obs
