// Pull-model metrics registry.
//
// Every layer of the stack already keeps a plain stats struct on its hot
// path (TincaCacheStats, JournalStats, NvmStats, ...) — increment-only
// fields with no synchronization and no naming.  The registry leaves those
// structs exactly where they are and adds the missing half: layers register
// *named views* over their fields (a counter is a pointer to a uint64_t, a
// gauge is a callback, a histogram is a pointer to a Histogram), and the
// registry walks them only when a dump is requested.  The hot path therefore
// pays nothing for being observable.
//
// Lifetime: the registry stores raw pointers into the registered objects, so
// it must not outlive them.  The intended pattern is a dump-scope registry —
// build, register, dump, discard — which is how the benches and the metrics
// tests use it.
//
// Naming scheme (DESIGN.md §8): dot-separated, lowercase,
// `<layer>[.<instance>].<metric>` — e.g. `tinca.write_hits`,
// `shard2.tinca.evictions`, `nvm.clflush`, `disk.blocks_written`,
// `tinca.lat.commit` (histograms live under `<layer>.lat.`).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "obs/json.h"

namespace tinca::obs {

/// Named, walk-on-demand registry of counters, gauges and histograms.
class MetricsRegistry {
 public:
  /// Register a counter: a monotonically increasing uint64 read in place.
  void add_counter(std::string name, const std::uint64_t* value);

  /// Register a gauge: a point-in-time value computed on each dump.
  void add_gauge(std::string name, std::function<std::uint64_t()> fn);

  /// Register a histogram, summarized on dump (count/mean/p50/p95/p99/max).
  void add_histogram(std::string name, const Histogram* hist);

  /// Whether a metric of any kind with this exact name is registered.
  [[nodiscard]] bool has(std::string_view name) const;

  /// Current value of a counter or gauge (contract violation if absent or a
  /// histogram) — the hook the debug accounting cross-checks use.
  [[nodiscard]] std::uint64_t value(std::string_view name) const;

  /// The registered histogram, or nullptr.
  [[nodiscard]] const Histogram* histogram(std::string_view name) const;

  /// Number of registered metrics.
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// JSON object: scalar members for counters/gauges, a summary object
  /// (count, sum, mean, min, p50, p95, p99, max) per histogram.
  [[nodiscard]] Json to_json() const;

  /// Convenience: to_json().dump(indent).
  [[nodiscard]] std::string to_json_text(int indent = 2) const;

  /// Aligned human-readable listing, one metric per line.
  [[nodiscard]] std::string to_text() const;

  /// Histogram summary object shared with the bench reporter.
  static Json histogram_json(const Histogram& h);

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind;
    const std::uint64_t* counter = nullptr;
    std::function<std::uint64_t()> gauge;
    const Histogram* hist = nullptr;
  };

  void add_entry(Entry e);

  std::vector<Entry> entries_;  ///< registration order, kept for dumps
  std::unordered_map<std::string, std::size_t> by_name_;
};

}  // namespace tinca::obs
