#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/expect.h"

namespace tinca::obs {

void MetricsRegistry::add_entry(Entry e) {
  TINCA_EXPECT(!e.name.empty(), "metric name must not be empty");
  const auto [it, inserted] = by_name_.emplace(e.name, entries_.size());
  (void)it;
  TINCA_EXPECT(inserted, "duplicate metric name: " + e.name);
  entries_.push_back(std::move(e));
}

void MetricsRegistry::add_counter(std::string name, const std::uint64_t* value) {
  TINCA_EXPECT(value != nullptr, "counter source must not be null");
  Entry e;
  e.name = std::move(name);
  e.kind = Kind::kCounter;
  e.counter = value;
  add_entry(std::move(e));
}

void MetricsRegistry::add_gauge(std::string name,
                                std::function<std::uint64_t()> fn) {
  TINCA_EXPECT(static_cast<bool>(fn), "gauge callback must not be empty");
  Entry e;
  e.name = std::move(name);
  e.kind = Kind::kGauge;
  e.gauge = std::move(fn);
  add_entry(std::move(e));
}

void MetricsRegistry::add_histogram(std::string name, const Histogram* hist) {
  TINCA_EXPECT(hist != nullptr, "histogram source must not be null");
  Entry e;
  e.name = std::move(name);
  e.kind = Kind::kHistogram;
  e.hist = hist;
  add_entry(std::move(e));
}

bool MetricsRegistry::has(std::string_view name) const {
  return by_name_.contains(std::string(name));
}

std::uint64_t MetricsRegistry::value(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  TINCA_EXPECT(it != by_name_.end(),
               "unknown metric: " + std::string(name));
  const Entry& e = entries_[it->second];
  TINCA_EXPECT(e.kind != Kind::kHistogram,
               "value() on a histogram metric: " + std::string(name));
  return e.kind == Kind::kCounter ? *e.counter : e.gauge();
}

const Histogram* MetricsRegistry::histogram(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return nullptr;
  const Entry& e = entries_[it->second];
  return e.kind == Kind::kHistogram ? e.hist : nullptr;
}

Json MetricsRegistry::histogram_json(const Histogram& h) {
  Json o = Json::object();
  o.set("count", Json::number(h.count()));
  o.set("sum", Json::number(h.sum()));
  o.set("mean", Json::number(h.mean()));
  o.set("min", Json::number(h.min()));
  o.set("p50", Json::number(h.quantile(0.50)));
  o.set("p95", Json::number(h.quantile(0.95)));
  o.set("p99", Json::number(h.quantile(0.99)));
  o.set("max", Json::number(h.max()));
  return o;
}

Json MetricsRegistry::to_json() const {
  Json o = Json::object();
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Kind::kCounter: o.set(e.name, Json::number(*e.counter)); break;
      case Kind::kGauge: o.set(e.name, Json::number(e.gauge())); break;
      case Kind::kHistogram: o.set(e.name, histogram_json(*e.hist)); break;
    }
  }
  return o;
}

std::string MetricsRegistry::to_json_text(int indent) const {
  return to_json().dump(indent);
}

std::string MetricsRegistry::to_text() const {
  std::size_t width = 0;
  for (const Entry& e : entries_) width = std::max(width, e.name.size());
  std::ostringstream os;
  for (const Entry& e : entries_) {
    os << e.name << std::string(width - e.name.size() + 2, ' ');
    switch (e.kind) {
      case Kind::kCounter: os << *e.counter; break;
      case Kind::kGauge: os << e.gauge(); break;
      case Kind::kHistogram: os << e.hist->summary(); break;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace tinca::obs
