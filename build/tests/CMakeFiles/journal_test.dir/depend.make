# Empty dependencies file for journal_test.
# This may be replaced when dependencies are built.
