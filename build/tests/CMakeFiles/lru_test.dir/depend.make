# Empty dependencies file for lru_test.
# This may be replaced when dependencies are built.
