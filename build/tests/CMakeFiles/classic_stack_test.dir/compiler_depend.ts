# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for classic_stack_test.
