file(REMOVE_RECURSE
  "CMakeFiles/classic_stack_test.dir/classic_stack_test.cc.o"
  "CMakeFiles/classic_stack_test.dir/classic_stack_test.cc.o.d"
  "classic_stack_test"
  "classic_stack_test.pdb"
  "classic_stack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classic_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
