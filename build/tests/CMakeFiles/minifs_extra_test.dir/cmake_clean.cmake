file(REMOVE_RECURSE
  "CMakeFiles/minifs_extra_test.dir/minifs_extra_test.cc.o"
  "CMakeFiles/minifs_extra_test.dir/minifs_extra_test.cc.o.d"
  "minifs_extra_test"
  "minifs_extra_test.pdb"
  "minifs_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minifs_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
