file(REMOVE_RECURSE
  "CMakeFiles/nvm_device_test.dir/nvm_device_test.cc.o"
  "CMakeFiles/nvm_device_test.dir/nvm_device_test.cc.o.d"
  "nvm_device_test"
  "nvm_device_test.pdb"
  "nvm_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
