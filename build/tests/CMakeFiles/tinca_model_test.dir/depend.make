# Empty dependencies file for tinca_model_test.
# This may be replaced when dependencies are built.
