file(REMOVE_RECURSE
  "CMakeFiles/tinca_model_test.dir/tinca_model_test.cc.o"
  "CMakeFiles/tinca_model_test.dir/tinca_model_test.cc.o.d"
  "tinca_model_test"
  "tinca_model_test.pdb"
  "tinca_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinca_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
