file(REMOVE_RECURSE
  "CMakeFiles/cache_entry_test.dir/cache_entry_test.cc.o"
  "CMakeFiles/cache_entry_test.dir/cache_entry_test.cc.o.d"
  "cache_entry_test"
  "cache_entry_test.pdb"
  "cache_entry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_entry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
