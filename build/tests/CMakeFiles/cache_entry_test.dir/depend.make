# Empty dependencies file for cache_entry_test.
# This may be replaced when dependencies are built.
