# Empty dependencies file for tinca_cache_test.
# This may be replaced when dependencies are built.
