file(REMOVE_RECURSE
  "CMakeFiles/tinca_cache_test.dir/tinca_cache_test.cc.o"
  "CMakeFiles/tinca_cache_test.dir/tinca_cache_test.cc.o.d"
  "tinca_cache_test"
  "tinca_cache_test.pdb"
  "tinca_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinca_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
