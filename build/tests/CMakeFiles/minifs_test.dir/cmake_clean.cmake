file(REMOVE_RECURSE
  "CMakeFiles/minifs_test.dir/minifs_test.cc.o"
  "CMakeFiles/minifs_test.dir/minifs_test.cc.o.d"
  "minifs_test"
  "minifs_test.pdb"
  "minifs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minifs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
