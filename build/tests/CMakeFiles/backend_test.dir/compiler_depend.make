# Empty compiler generated dependencies file for backend_test.
# This may be replaced when dependencies are built.
