file(REMOVE_RECURSE
  "CMakeFiles/ubj_test.dir/ubj_test.cc.o"
  "CMakeFiles/ubj_test.dir/ubj_test.cc.o.d"
  "ubj_test"
  "ubj_test.pdb"
  "ubj_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubj_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
