# Empty compiler generated dependencies file for ubj_test.
# This may be replaced when dependencies are built.
