file(REMOVE_RECURSE
  "CMakeFiles/tinca_crash_test.dir/tinca_crash_test.cc.o"
  "CMakeFiles/tinca_crash_test.dir/tinca_crash_test.cc.o.d"
  "tinca_crash_test"
  "tinca_crash_test.pdb"
  "tinca_crash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinca_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
