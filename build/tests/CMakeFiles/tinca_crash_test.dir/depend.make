# Empty dependencies file for tinca_crash_test.
# This may be replaced when dependencies are built.
