# Empty compiler generated dependencies file for classic_crash_test.
# This may be replaced when dependencies are built.
