# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for classic_crash_test.
