file(REMOVE_RECURSE
  "CMakeFiles/classic_crash_test.dir/classic_crash_test.cc.o"
  "CMakeFiles/classic_crash_test.dir/classic_crash_test.cc.o.d"
  "classic_crash_test"
  "classic_crash_test.pdb"
  "classic_crash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classic_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
