file(REMOVE_RECURSE
  "CMakeFiles/flashcache_test.dir/flashcache_test.cc.o"
  "CMakeFiles/flashcache_test.dir/flashcache_test.cc.o.d"
  "flashcache_test"
  "flashcache_test.pdb"
  "flashcache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashcache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
