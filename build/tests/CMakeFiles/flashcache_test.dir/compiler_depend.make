# Empty compiler generated dependencies file for flashcache_test.
# This may be replaced when dependencies are built.
