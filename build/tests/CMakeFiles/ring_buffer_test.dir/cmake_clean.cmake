file(REMOVE_RECURSE
  "CMakeFiles/ring_buffer_test.dir/ring_buffer_test.cc.o"
  "CMakeFiles/ring_buffer_test.dir/ring_buffer_test.cc.o.d"
  "ring_buffer_test"
  "ring_buffer_test.pdb"
  "ring_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
