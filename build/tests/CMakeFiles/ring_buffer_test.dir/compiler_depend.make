# Empty compiler generated dependencies file for ring_buffer_test.
# This may be replaced when dependencies are built.
