# Empty compiler generated dependencies file for tinca_modes_test.
# This may be replaced when dependencies are built.
