file(REMOVE_RECURSE
  "CMakeFiles/tinca_modes_test.dir/tinca_modes_test.cc.o"
  "CMakeFiles/tinca_modes_test.dir/tinca_modes_test.cc.o.d"
  "tinca_modes_test"
  "tinca_modes_test.pdb"
  "tinca_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinca_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
