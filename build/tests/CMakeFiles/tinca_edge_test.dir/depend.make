# Empty dependencies file for tinca_edge_test.
# This may be replaced when dependencies are built.
