file(REMOVE_RECURSE
  "CMakeFiles/tinca_edge_test.dir/tinca_edge_test.cc.o"
  "CMakeFiles/tinca_edge_test.dir/tinca_edge_test.cc.o.d"
  "tinca_edge_test"
  "tinca_edge_test.pdb"
  "tinca_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinca_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
