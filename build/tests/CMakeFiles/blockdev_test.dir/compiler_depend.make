# Empty compiler generated dependencies file for blockdev_test.
# This may be replaced when dependencies are built.
