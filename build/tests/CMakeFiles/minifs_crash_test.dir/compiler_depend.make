# Empty compiler generated dependencies file for minifs_crash_test.
# This may be replaced when dependencies are built.
