file(REMOVE_RECURSE
  "CMakeFiles/minifs_crash_test.dir/minifs_crash_test.cc.o"
  "CMakeFiles/minifs_crash_test.dir/minifs_crash_test.cc.o.d"
  "minifs_crash_test"
  "minifs_crash_test.pdb"
  "minifs_crash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minifs_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
