# Empty dependencies file for verify_media_test.
# This may be replaced when dependencies are built.
