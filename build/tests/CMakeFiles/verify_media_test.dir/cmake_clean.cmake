file(REMOVE_RECURSE
  "CMakeFiles/verify_media_test.dir/verify_media_test.cc.o"
  "CMakeFiles/verify_media_test.dir/verify_media_test.cc.o.d"
  "verify_media_test"
  "verify_media_test.pdb"
  "verify_media_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_media_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
