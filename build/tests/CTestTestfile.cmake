# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/nvm_device_test[1]_include.cmake")
include("/root/repo/build/tests/blockdev_test[1]_include.cmake")
include("/root/repo/build/tests/cache_entry_test[1]_include.cmake")
include("/root/repo/build/tests/ring_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/tinca_cache_test[1]_include.cmake")
include("/root/repo/build/tests/tinca_crash_test[1]_include.cmake")
include("/root/repo/build/tests/flashcache_test[1]_include.cmake")
include("/root/repo/build/tests/journal_test[1]_include.cmake")
include("/root/repo/build/tests/classic_stack_test[1]_include.cmake")
include("/root/repo/build/tests/backend_test[1]_include.cmake")
include("/root/repo/build/tests/minifs_test[1]_include.cmake")
include("/root/repo/build/tests/minifs_crash_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/lru_test[1]_include.cmake")
include("/root/repo/build/tests/verify_media_test[1]_include.cmake")
include("/root/repo/build/tests/tinca_model_test[1]_include.cmake")
include("/root/repo/build/tests/tinca_modes_test[1]_include.cmake")
include("/root/repo/build/tests/classic_crash_test[1]_include.cmake")
include("/root/repo/build/tests/minifs_extra_test[1]_include.cmake")
include("/root/repo/build/tests/tinca_edge_test[1]_include.cmake")
include("/root/repo/build/tests/ubj_test[1]_include.cmake")
