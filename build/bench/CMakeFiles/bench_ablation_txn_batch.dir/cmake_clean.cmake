file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_txn_batch.dir/bench_ablation_txn_batch.cc.o"
  "CMakeFiles/bench_ablation_txn_batch.dir/bench_ablation_txn_batch.cc.o.d"
  "bench_ablation_txn_batch"
  "bench_ablation_txn_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_txn_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
