# Empty compiler generated dependencies file for bench_ablation_txn_batch.
# This may be replaced when dependencies are built.
