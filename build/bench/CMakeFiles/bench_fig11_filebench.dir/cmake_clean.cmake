file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_filebench.dir/bench_fig11_filebench.cc.o"
  "CMakeFiles/bench_fig11_filebench.dir/bench_fig11_filebench.cc.o.d"
  "bench_fig11_filebench"
  "bench_fig11_filebench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_filebench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
