# Empty compiler generated dependencies file for bench_fig11_filebench.
# This may be replaced when dependencies are built.
