file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_tpcc.dir/bench_fig08_tpcc.cc.o"
  "CMakeFiles/bench_fig08_tpcc.dir/bench_fig08_tpcc.cc.o.d"
  "bench_fig08_tpcc"
  "bench_fig08_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
