# Empty dependencies file for bench_fig10_teragen.
# This may be replaced when dependencies are built.
