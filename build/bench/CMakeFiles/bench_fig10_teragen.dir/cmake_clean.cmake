file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_teragen.dir/bench_fig10_teragen.cc.o"
  "CMakeFiles/bench_fig10_teragen.dir/bench_fig10_teragen.cc.o.d"
  "bench_fig10_teragen"
  "bench_fig10_teragen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_teragen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
