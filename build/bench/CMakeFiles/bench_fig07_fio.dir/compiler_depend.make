# Empty compiler generated dependencies file for bench_fig07_fio.
# This may be replaced when dependencies are built.
