file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_fio.dir/bench_fig07_fio.cc.o"
  "CMakeFiles/bench_fig07_fio.dir/bench_fig07_fio.cc.o.d"
  "bench_fig07_fio"
  "bench_fig07_fio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_fio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
