file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_flush.dir/bench_ablation_flush.cc.o"
  "CMakeFiles/bench_ablation_flush.dir/bench_ablation_flush.cc.o.d"
  "bench_ablation_flush"
  "bench_ablation_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
