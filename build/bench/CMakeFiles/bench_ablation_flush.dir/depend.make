# Empty dependencies file for bench_ablation_flush.
# This may be replaced when dependencies are built.
