file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_primitives.dir/bench_micro_primitives.cc.o"
  "CMakeFiles/bench_micro_primitives.dir/bench_micro_primitives.cc.o.d"
  "bench_micro_primitives"
  "bench_micro_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
