# Empty dependencies file for bench_fig13_txn_blocks.
# This may be replaced when dependencies are built.
