file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_txn_blocks.dir/bench_fig13_txn_blocks.cc.o"
  "CMakeFiles/bench_fig13_txn_blocks.dir/bench_fig13_txn_blocks.cc.o.d"
  "bench_fig13_txn_blocks"
  "bench_fig13_txn_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_txn_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
