file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wear.dir/bench_ablation_wear.cc.o"
  "CMakeFiles/bench_ablation_wear.dir/bench_ablation_wear.cc.o.d"
  "bench_ablation_wear"
  "bench_ablation_wear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
