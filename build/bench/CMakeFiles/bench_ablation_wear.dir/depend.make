# Empty dependencies file for bench_ablation_wear.
# This may be replaced when dependencies are built.
