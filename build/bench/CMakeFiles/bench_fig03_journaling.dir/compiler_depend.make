# Empty compiler generated dependencies file for bench_fig03_journaling.
# This may be replaced when dependencies are built.
