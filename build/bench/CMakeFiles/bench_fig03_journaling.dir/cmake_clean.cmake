file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_journaling.dir/bench_fig03_journaling.cc.o"
  "CMakeFiles/bench_fig03_journaling.dir/bench_fig03_journaling.cc.o.d"
  "bench_fig03_journaling"
  "bench_fig03_journaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_journaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
