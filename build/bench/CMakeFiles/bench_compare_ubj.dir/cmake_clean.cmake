file(REMOVE_RECURSE
  "CMakeFiles/bench_compare_ubj.dir/bench_compare_ubj.cc.o"
  "CMakeFiles/bench_compare_ubj.dir/bench_compare_ubj.cc.o.d"
  "bench_compare_ubj"
  "bench_compare_ubj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compare_ubj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
