# Empty compiler generated dependencies file for bench_compare_ubj.
# This may be replaced when dependencies are built.
