# Empty compiler generated dependencies file for bench_fig04_metadata.
# This may be replaced when dependencies are built.
