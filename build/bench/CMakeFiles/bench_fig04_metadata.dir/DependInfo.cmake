
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig04_metadata.cc" "bench/CMakeFiles/bench_fig04_metadata.dir/bench_fig04_metadata.cc.o" "gcc" "bench/CMakeFiles/bench_fig04_metadata.dir/bench_fig04_metadata.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tinca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/tinca_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/tinca/CMakeFiles/tinca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/classic/CMakeFiles/tinca_classic.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/tinca_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tinca_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tinca_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/ubj/CMakeFiles/tinca_ubj.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
