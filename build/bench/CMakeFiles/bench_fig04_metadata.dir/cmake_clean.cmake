file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_metadata.dir/bench_fig04_metadata.cc.o"
  "CMakeFiles/bench_fig04_metadata.dir/bench_fig04_metadata.cc.o.d"
  "bench_fig04_metadata"
  "bench_fig04_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
