# Empty compiler generated dependencies file for bench_fig12_media.
# This may be replaced when dependencies are built.
