file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_media.dir/bench_fig12_media.cc.o"
  "CMakeFiles/bench_fig12_media.dir/bench_fig12_media.cc.o.d"
  "bench_fig12_media"
  "bench_fig12_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
