file(REMOVE_RECURSE
  "CMakeFiles/cluster_teragen.dir/cluster_teragen.cc.o"
  "CMakeFiles/cluster_teragen.dir/cluster_teragen.cc.o.d"
  "cluster_teragen"
  "cluster_teragen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_teragen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
