# Empty dependencies file for cluster_teragen.
# This may be replaced when dependencies are built.
