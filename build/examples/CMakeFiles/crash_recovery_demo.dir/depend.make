# Empty dependencies file for crash_recovery_demo.
# This may be replaced when dependencies are built.
