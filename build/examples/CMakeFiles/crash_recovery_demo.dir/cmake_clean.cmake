file(REMOVE_RECURSE
  "CMakeFiles/crash_recovery_demo.dir/crash_recovery_demo.cc.o"
  "CMakeFiles/crash_recovery_demo.dir/crash_recovery_demo.cc.o.d"
  "crash_recovery_demo"
  "crash_recovery_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_recovery_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
