file(REMOVE_RECURSE
  "libtinca_nvm.a"
)
