# Empty compiler generated dependencies file for tinca_nvm.
# This may be replaced when dependencies are built.
