file(REMOVE_RECURSE
  "CMakeFiles/tinca_nvm.dir/nvm_device.cc.o"
  "CMakeFiles/tinca_nvm.dir/nvm_device.cc.o.d"
  "libtinca_nvm.a"
  "libtinca_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinca_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
