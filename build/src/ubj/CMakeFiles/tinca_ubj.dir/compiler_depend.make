# Empty compiler generated dependencies file for tinca_ubj.
# This may be replaced when dependencies are built.
