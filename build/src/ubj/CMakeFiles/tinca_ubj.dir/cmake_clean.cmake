file(REMOVE_RECURSE
  "CMakeFiles/tinca_ubj.dir/ubj_store.cc.o"
  "CMakeFiles/tinca_ubj.dir/ubj_store.cc.o.d"
  "libtinca_ubj.a"
  "libtinca_ubj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinca_ubj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
