file(REMOVE_RECURSE
  "libtinca_ubj.a"
)
