# Empty compiler generated dependencies file for tinca_classic.
# This may be replaced when dependencies are built.
