file(REMOVE_RECURSE
  "CMakeFiles/tinca_classic.dir/classic_stack.cc.o"
  "CMakeFiles/tinca_classic.dir/classic_stack.cc.o.d"
  "CMakeFiles/tinca_classic.dir/flashcache.cc.o"
  "CMakeFiles/tinca_classic.dir/flashcache.cc.o.d"
  "CMakeFiles/tinca_classic.dir/journal.cc.o"
  "CMakeFiles/tinca_classic.dir/journal.cc.o.d"
  "libtinca_classic.a"
  "libtinca_classic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinca_classic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
