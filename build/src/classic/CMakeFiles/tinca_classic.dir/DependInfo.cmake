
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classic/classic_stack.cc" "src/classic/CMakeFiles/tinca_classic.dir/classic_stack.cc.o" "gcc" "src/classic/CMakeFiles/tinca_classic.dir/classic_stack.cc.o.d"
  "/root/repo/src/classic/flashcache.cc" "src/classic/CMakeFiles/tinca_classic.dir/flashcache.cc.o" "gcc" "src/classic/CMakeFiles/tinca_classic.dir/flashcache.cc.o.d"
  "/root/repo/src/classic/journal.cc" "src/classic/CMakeFiles/tinca_classic.dir/journal.cc.o" "gcc" "src/classic/CMakeFiles/tinca_classic.dir/journal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tinca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/tinca_nvm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
