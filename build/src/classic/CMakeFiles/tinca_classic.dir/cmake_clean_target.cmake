file(REMOVE_RECURSE
  "libtinca_classic.a"
)
