# Empty compiler generated dependencies file for tinca_workloads.
# This may be replaced when dependencies are built.
