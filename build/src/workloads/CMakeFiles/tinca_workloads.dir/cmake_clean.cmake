file(REMOVE_RECURSE
  "CMakeFiles/tinca_workloads.dir/filebench.cc.o"
  "CMakeFiles/tinca_workloads.dir/filebench.cc.o.d"
  "CMakeFiles/tinca_workloads.dir/fio.cc.o"
  "CMakeFiles/tinca_workloads.dir/fio.cc.o.d"
  "CMakeFiles/tinca_workloads.dir/teragen.cc.o"
  "CMakeFiles/tinca_workloads.dir/teragen.cc.o.d"
  "CMakeFiles/tinca_workloads.dir/tpcc.cc.o"
  "CMakeFiles/tinca_workloads.dir/tpcc.cc.o.d"
  "libtinca_workloads.a"
  "libtinca_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinca_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
