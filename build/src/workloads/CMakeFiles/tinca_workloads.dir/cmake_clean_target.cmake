file(REMOVE_RECURSE
  "libtinca_workloads.a"
)
