# Empty compiler generated dependencies file for tinca_common.
# This may be replaced when dependencies are built.
