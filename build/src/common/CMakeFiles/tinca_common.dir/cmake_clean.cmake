file(REMOVE_RECURSE
  "CMakeFiles/tinca_common.dir/event_queue.cc.o"
  "CMakeFiles/tinca_common.dir/event_queue.cc.o.d"
  "CMakeFiles/tinca_common.dir/histogram.cc.o"
  "CMakeFiles/tinca_common.dir/histogram.cc.o.d"
  "CMakeFiles/tinca_common.dir/latency.cc.o"
  "CMakeFiles/tinca_common.dir/latency.cc.o.d"
  "CMakeFiles/tinca_common.dir/table.cc.o"
  "CMakeFiles/tinca_common.dir/table.cc.o.d"
  "libtinca_common.a"
  "libtinca_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinca_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
