file(REMOVE_RECURSE
  "libtinca_common.a"
)
