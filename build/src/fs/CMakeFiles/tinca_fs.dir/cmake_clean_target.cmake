file(REMOVE_RECURSE
  "libtinca_fs.a"
)
