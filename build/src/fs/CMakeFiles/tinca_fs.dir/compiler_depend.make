# Empty compiler generated dependencies file for tinca_fs.
# This may be replaced when dependencies are built.
