file(REMOVE_RECURSE
  "CMakeFiles/tinca_fs.dir/minifs.cc.o"
  "CMakeFiles/tinca_fs.dir/minifs.cc.o.d"
  "libtinca_fs.a"
  "libtinca_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinca_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
