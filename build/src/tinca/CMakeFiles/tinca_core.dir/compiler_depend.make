# Empty compiler generated dependencies file for tinca_core.
# This may be replaced when dependencies are built.
