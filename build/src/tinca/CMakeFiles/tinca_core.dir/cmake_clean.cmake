file(REMOVE_RECURSE
  "CMakeFiles/tinca_core.dir/ring_buffer.cc.o"
  "CMakeFiles/tinca_core.dir/ring_buffer.cc.o.d"
  "CMakeFiles/tinca_core.dir/tinca_cache.cc.o"
  "CMakeFiles/tinca_core.dir/tinca_cache.cc.o.d"
  "CMakeFiles/tinca_core.dir/verify.cc.o"
  "CMakeFiles/tinca_core.dir/verify.cc.o.d"
  "libtinca_core.a"
  "libtinca_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinca_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
