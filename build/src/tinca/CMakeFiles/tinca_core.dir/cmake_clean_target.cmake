file(REMOVE_RECURSE
  "libtinca_core.a"
)
