file(REMOVE_RECURSE
  "CMakeFiles/tinca_cluster.dir/minidfs.cc.o"
  "CMakeFiles/tinca_cluster.dir/minidfs.cc.o.d"
  "libtinca_cluster.a"
  "libtinca_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinca_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
