file(REMOVE_RECURSE
  "libtinca_cluster.a"
)
