# Empty dependencies file for tinca_cluster.
# This may be replaced when dependencies are built.
