#!/usr/bin/env bash
# CI entry point: Debug build with Address+UB sanitizers, full test suite.
#
# A Debug build keeps the TINCA debug invariants compiled in (NDEBUG off —
# e.g. TincaCache::assert_dirty_count cross-checks the incremental dirty
# counter against a full entry scan on every commit), and the sanitizers
# catch lifetime/aliasing mistakes the RelWithDebInfo tier-1 run would miss.
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR=${BUILD_DIR:-build-ci}
SAN_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DTINCA_WERROR=ON \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"

cmake --build "$BUILD_DIR" -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# ---------------------------------------------------------------------------
# ThreadSanitizer stage: the MVCC lock-free read path (DESIGN.md §12) and the
# sharded front-end are the only truly multi-threaded code in the tree, and
# ASan cannot see data races.  TSan is incompatible with ASan, so this is a
# separate build; only the threaded suites run under it.
TSAN_DIR=${TSAN_DIR:-build-ci-tsan}
TSAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"

cmake -B "$TSAN_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DTINCA_WERROR=ON \
  -DCMAKE_CXX_FLAGS="$TSAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$TSAN_FLAGS"
cmake --build "$TSAN_DIR" -j "$(nproc)" \
  --target mvcc_stress_test shard_test cleaner_test group_commit_test \
  multistream_stress_test nvlog_stress_test

"$TSAN_DIR/tests/mvcc_stress_test"
"$TSAN_DIR/tests/shard_test"
"$TSAN_DIR/tests/cleaner_test"
# The group-commit suite includes the multi-threaded per-shard batcher
# stress (DESIGN.md §14): leaders coalescing concurrent committers.
"$TSAN_DIR/tests/group_commit_test"
# Multi-stream cross-shard stress (DESIGN.md §15): writers mixing
# single-shard and cross-shard txns while MVCC readers check that no
# snapshot ever observes half a cross-stream transaction.
"$TSAN_DIR/tests/multistream_stress_test"
# Deep-stacked NvLog stress (DESIGN.md §16): concurrent absorbers + a
# drain_pass() loop whose shard-affine batches run on real per-shard
# threads (drain_threads=true) into the sharded inner.
"$TSAN_DIR/tests/nvlog_stress_test"
echo "tsan stage: OK (mvcc stress + shard + cleaner + group-commit +" \
  "multistream + nvlog-stacked suites race-free)"

# ---------------------------------------------------------------------------
# Bench smoke: Release build, run two benches with --json and validate the
# machine-readable output against the tinca-bench-v1 schema.  Release because
# the JSON contract must hold in the configuration people actually benchmark,
# and because it keeps this stage fast.
BENCH_DIR=${BENCH_DIR:-build-ci-bench}
JSON_OUT=$(mktemp -d)
trap 'rm -rf "$JSON_OUT"' EXIT

cmake -B "$BENCH_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BENCH_DIR" -j "$(nproc)" \
  --target bench_micro_primitives bench_ablation_txn_batch bench_fault_sweep \
  bench_fs_fuzz_sweep bench_cleaner bench_mvcc_reads bench_nvlog \
  bench_group_commit bench_multistream

"$BENCH_DIR/bench/bench_micro_primitives" \
  --benchmark_filter=BM_CacheEntryCodec --benchmark_min_time=0.05 \
  --json "$JSON_OUT/micro.json" > /dev/null
"$BENCH_DIR/bench/bench_ablation_txn_batch" \
  --json "$JSON_OUT/txn_batch.json" > /dev/null

# Fault-fuzz smoke (DESIGN.md §9): 1000 randomized fault schedules per stack
# at a fixed seed.  The binary exits nonzero on any recovery-invariant
# violation, so this line is the gate.
"$BENCH_DIR/bench/bench_fault_sweep" --schedules 1000 --seed 1 \
  --json "$JSON_OUT/fault_sweep.json" > /dev/null

# FS-level fuzz smoke (DESIGN.md §10): 500 randomized MiniFs op histories per
# stack plus a crash-point sweep, fixed seed.  Nonzero exit on any tree-model
# mismatch or dirty fsck — this line is the file-system consistency gate.
"$BENCH_DIR/bench/bench_fs_fuzz_sweep" --schedules 500 --seed 1 \
  --json "$JSON_OUT/fs_fuzz.json" > /dev/null

# Background-cleaner smoke (DESIGN.md §11): off-vs-on commit latency.  The
# binary exits nonzero unless cleaner-on commit p95 beats cleaner-off, so
# this line gates "the cleaner actually moves write-backs off the commit
# path" — a cleaner regressed into a no-op fails CI here.
"$BENCH_DIR/bench/bench_cleaner" --json "$JSON_OUT/cleaner.json" > /dev/null

# MVCC read-path smoke (DESIGN.md §12): lock-free reads vs the mutex
# baseline in virtual time, with a writer committing throughout and every
# read verified against a committed image.  The binary exits nonzero unless
# the 4-reader speedup is >= 3x, so this line gates "clean read hits never
# take the shard mutex" — a fast path regressed onto the lock fails here.
"$BENCH_DIR/bench/bench_mvcc_reads" --json "$JSON_OUT/mvcc.json" > /dev/null

# NVM write-ahead tier smoke (DESIGN.md §13 + §16): fsync-heavy 1-block
# commits on NvLog-Classic vs classic-journal vs Tinca, then the deep-stacked
# tiers (NvLog over Tinca / Sharded inners).  The binary exits nonzero unless
# NvLog-Classic's throughput is >= 2x classic-journal's AND its drain
# coalesced at least one superseded record AND the §16 gates hold —
# NvLog-Sharded >= 2x Sharded on the fsync-heavy commit window, parallel
# drain-lag p95 <= 0.5x sequential, and watermark-ring rotation cools the
# hot metadata line >= 10x.  The schema-checked JSON is published as
# BENCH_nvlog_stacked.json for downstream comparison.
"$BENCH_DIR/bench/bench_nvlog" --json "$JSON_OUT/nvlog.json" > /dev/null
cp "$JSON_OUT/nvlog.json" BENCH_nvlog_stacked.json

# Group-commit smoke (DESIGN.md §14): single commits vs commit_group over a
# hot-set stream sweep plus a TPC-C-style open-arrival DES.  The binary exits
# nonzero unless grouped commit throughput at 8 streams is >= 2x single,
# fences/txn < 0.25, 1-stream p95 does not regress, and the DES p95 at 100k
# users improves — so this line gates "batching actually amortizes the flush
# pass + fence".  The schema-checked JSON is published as
# BENCH_group_commit.json for downstream comparison.
"$BENCH_DIR/bench/bench_group_commit" \
  --json "$JSON_OUT/group_commit.json" > /dev/null
cp "$JSON_OUT/group_commit.json" BENCH_group_commit.json

# Multi-stream smoke (DESIGN.md §15): per-stream commit rings vs the
# single-ring baseline over real measured commit costs, plus fence
# accounting against the §14 group path.  The binary exits nonzero unless
# the 8-stream modeled throughput is >= 3x single-ring, group fences/txn
# does not grow with streams, and the ~10% cross-shard mix actually went
# through the atomic cross-stream commit record — so this line gates "the
# per-stream rings buy pipeline headroom without costing fences or
# atomicity".  The schema-checked JSON is published as
# BENCH_multistream.json for downstream comparison.
"$BENCH_DIR/bench/bench_multistream" \
  --json "$JSON_OUT/multistream.json" > /dev/null
cp "$JSON_OUT/multistream.json" BENCH_multistream.json

# Oracle self-test: a sabotaged run (harness corrupts a committed data block
# behind the backend's back) must FAIL, proving the oracle has teeth.
if "$BENCH_DIR/bench/bench_fs_fuzz_sweep" --schedules 20 --seed 1 \
    --sabotage data > /dev/null 2>&1; then
  echo "FATAL: sabotaged fs-fuzz run passed — the oracle is blind" >&2
  exit 1
fi
echo "fs fuzz sabotage self-test: correctly rejected"

python3 - "$JSON_OUT/micro.json" "$JSON_OUT/txn_batch.json" \
  "$JSON_OUT/fault_sweep.json" "$JSON_OUT/fs_fuzz.json" \
  "$JSON_OUT/cleaner.json" "$JSON_OUT/mvcc.json" \
  "$JSON_OUT/nvlog.json" "$JSON_OUT/group_commit.json" \
  "$JSON_OUT/multistream.json" <<'EOF'
import json, numbers, sys

for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    assert doc["schema"] == "tinca-bench-v1", f"{path}: bad schema {doc['schema']!r}"
    assert doc["bench"], f"{path}: empty bench name"
    assert isinstance(doc["config"], dict), f"{path}: config not an object"
    assert doc["rows"], f"{path}: no result rows"
    for row in doc["rows"]:
        assert row["label"], f"{path}: row without label"
        assert row["metrics"], f"{path}: row {row['label']!r} has no metrics"
        for name, value in row["metrics"].items():
            assert isinstance(value, numbers.Real), \
                f"{path}: {row['label']}/{name} is not numeric: {value!r}"
    print(f"{path}: OK ({len(doc['rows'])} rows)")

# The base fault/fs campaigns: the five bare stacks plus the four
# cleaner-capable ones re-run with the background cleaner armed (§11; the
# NvLog stack's cleaner drives the log drain, §13).  On top of that, the
# group-commit-capable stacks re-run with batched commit_group() schedules
# (§14) — the block-level sweep batches on every such stack, the fs-level
# sweep arms the sharded per-shard batcher — and the sharded stack re-runs
# with 2 commit streams per shard (§15), alone and combined with group
# commit, so crash cuts land inside the cross-stream commit-record protocol.
# The deep-stacked NvLog tiers (§16) run in both sweeps too, so crash cuts
# land inside parallel shard-affine drains and watermark-ring rotation.
CAMPAIGNS = {"Tinca", "Classic", "UBJ", "Sharded", "NvLog",
             "Tinca+cleaner", "UBJ+cleaner", "Sharded+cleaner",
             "NvLog+cleaner"}
STREAM_CAMPAIGNS = {"Sharded+streams", "Sharded+streams+group"}
STACKED_CAMPAIGNS = {"NvLogTinca", "NvLogSharded", "NvLogSharded+group"}
FAULT_CAMPAIGNS = CAMPAIGNS | {"Tinca+group", "Sharded+group",
                               "NvLog+group"} | STREAM_CAMPAIGNS \
    | STACKED_CAMPAIGNS
FS_CAMPAIGNS = CAMPAIGNS | {"Sharded+group"} | STREAM_CAMPAIGNS \
    | STACKED_CAMPAIGNS

# Fault-sweep specifics: every campaign present, full schedule count, and
# zero recovery-invariant violations.
with open(sys.argv[3]) as f:
    sweep = json.load(f)
labels = {row["label"] for row in sweep["rows"]}
assert labels == FAULT_CAMPAIGNS, f"campaigns ran: {labels}"
for row in sweep["rows"]:
    m = row["metrics"]
    assert m["schedules"] >= 1000, f"{row['label']}: only {m['schedules']} schedules"
    assert m["violations"] == 0, f"{row['label']}: {m['violations']} violations"
    assert m["crashes"] > 0, f"{row['label']}: campaign never crashed"
print(f"fault sweep: OK ({len(sweep['rows'])} campaigns, 0 violations)")

# FS-fuzz specifics: every campaign, full schedule count, zero tree-model
# violations, zero dirty fscks, and the campaign actually exercised the
# machinery (crashes happened, fsck ran, the sweep covered commit points).
with open(sys.argv[4]) as f:
    fsf = json.load(f)
labels = {row["label"] for row in fsf["rows"]}
assert labels == FS_CAMPAIGNS, f"campaigns ran: {labels}"
for row in fsf["rows"]:
    m = row["metrics"]
    assert m["schedules"] >= 500, f"{row['label']}: only {m['schedules']} schedules"
    assert m["violations"] == 0, f"{row['label']}: {m['violations']} violations"
    assert m["fsck_dirty"] == 0, f"{row['label']}: {m['fsck_dirty']} dirty fscks"
    assert m["crashes"] > 0, f"{row['label']}: campaign never crashed"
    assert m["fsck_runs"] > 0, f"{row['label']}: fsck never ran"
    assert m["sweep_points"] > 0, f"{row['label']}: sweep covered no points"
print(f"fs fuzz: OK ({len(fsf['rows'])} campaigns, 0 violations, 0 dirty)")

# Cleaner smoke specifics: both rows present, the armed run retired work in
# the background, and its commit p95 is strictly better than cleaner-off.
with open(sys.argv[5]) as f:
    cl = json.load(f)
rows = {row["label"]: row["metrics"] for row in cl["rows"]}
assert set(rows) == {"cleaner-off", "cleaner-on"}, f"rows: {set(rows)}"
off, on = rows["cleaner-off"], rows["cleaner-on"]
assert on["commit_p95_ns"] < off["commit_p95_ns"], \
    f"cleaner-on commit p95 {on['commit_p95_ns']} !< off {off['commit_p95_ns']}"
assert on["cleaner_retired"] > 0, "armed run never retired a block"
assert on["background_cleanings"] > 0, "armed run did no background write-backs"
assert off["dirty_writebacks"] > 0, "off run never paid an inline write-back"
assert on["drain_lag_count"] > 0, "drain-lag histogram is empty"
print(f"cleaner: OK (commit p95 off/on = "
      f"{off['commit_p95_ns'] / on['commit_p95_ns']:.2f}x)")

# MVCC read smoke specifics: both modes at every reader count, the gate
# speedup, every read content-verified, and the fast path actually resolved
# through version chains (not silently falling back to the mutex).
with open(sys.argv[6]) as f:
    mv = json.load(f)
rows = {row["label"]: row["metrics"] for row in mv["rows"]}
expect = {f"{mode}/readers={n}" for mode in ("locked", "mvcc") for n in (1, 2, 4, 8)}
assert set(rows) == expect, f"rows: {set(rows)}"
speedup = rows["mvcc/readers=4"]["reads_per_sec_m"] / \
    rows["locked/readers=4"]["reads_per_sec_m"]
assert speedup >= 3.0, f"mvcc read speedup at 4 readers only {speedup:.2f}x"
for label, m in rows.items():
    assert m["verified"] == 1, f"{label}: unverified read content"
    assert m["commit_count"] > 0, f"{label}: writer never committed"
    if label.startswith("mvcc"):
        assert m["snapshot_reads"] >= m["reads"], \
            f"{label}: only {m['snapshot_reads']} chain-resolved reads"
        assert m["lock_fallbacks"] == 0, f"{label}: fast path fell back to lock"
print(f"mvcc reads: OK (speedup at 4 readers = {speedup:.2f}x)")

# NvLog smoke specifics: all three stacks ran, the headline >= 2x throughput
# gate vs classic-journal, and the drain both moved records and coalesced
# superseded ones (a log tier that never coalesces has lost its batching).
with open(sys.argv[7]) as f:
    nv = json.load(f)
rows = {row["label"]: row["metrics"] for row in nv["rows"]}
assert set(rows) == {"Classic-journal", "NvLog-Classic", "Tinca",
                     "NvLog-drain", "Sharded", "NvLog-Tinca",
                     "NvLog-Sharded", "NvLog-stacked", "NvLog-meta-wear"}, \
    f"rows: {set(rows)}"
drain = rows["NvLog-drain"]
assert drain["speedup_vs_classic"] >= 2.0, \
    f"NvLog speedup only {drain['speedup_vs_classic']:.2f}x"
assert drain["coalesce_ratio"] > 0, "drain never coalesced a record"
assert drain["absorbed_txns"] > 0, "log absorbed no commits"
assert drain["drained_records"] > 0, "log drained no records"
assert drain["segments_recycled"] > 0, "log never recycled a segment"
# Deep-stacked gates (§16): the log tier over the Sharded inner must win
# the fsync-heavy commit window >= 2x, shard-affine parallel drains must
# at least halve the drain-lag p95, and the drains must actually have been
# partitioned by inner shard (not one flat batch).
stacked = rows["NvLog-stacked"]
assert stacked["speedup_vs_sharded"] >= 2.0, \
    f"NvLog-Sharded speedup only {stacked['speedup_vs_sharded']:.2f}x"
assert stacked["drain_lag_ratio"] <= 0.5, \
    f"parallel drain-lag ratio {stacked['drain_lag_ratio']:.2f} > 0.5"
assert stacked["partitioned_drains"] > 0, "no drain was shard-partitioned"
assert stacked["shard_batches"] > stacked["partitioned_drains"], \
    "partitioned drains never produced more than one shard batch"
wear = rows["NvLog-meta-wear"]
assert wear["wear_improvement"] >= 10.0, \
    f"watermark-ring wear improvement only {wear['wear_improvement']:.1f}x"
print(f"nvlog: OK (speedup = {drain['speedup_vs_classic']:.2f}x, "
      f"coalesce = {drain['coalesce_ratio']:.2f}, "
      f"stacked = {stacked['speedup_vs_sharded']:.2f}x, "
      f"lag ratio = {stacked['drain_lag_ratio']:.2f}, "
      f"wear = {wear['wear_improvement']:.1f}x)")

# Group-commit smoke specifics (§14): the full stream sweep and DES user
# sweep are present, and the headline ratios hold — >= 2x commit throughput
# and < 0.25 fences/txn from batching at 8 streams, no 1-stream p95
# regression, and a DES p95 win at 100k users.  The batcher row proves the
# threaded per-shard path actually formed multi-member batches.
with open(sys.argv[8]) as f:
    gc = json.load(f)
rows = {row["label"]: row["metrics"] for row in gc["rows"]}
expect = {f"{mode}/streams={n}" for mode in ("single", "group")
          for n in (1, 2, 4, 8, 16)}
expect |= {f"{mode}/users={u}" for mode in ("des-single", "des-group")
           for u in (1000, 10000, 100000)}
expect |= {"batcher/threads=8"}
assert set(rows) == expect, f"rows: {set(rows)}"
ratio = rows["group/streams=8"]["txns_per_sec"] / \
    rows["single/streams=8"]["txns_per_sec"]
assert ratio >= 2.0, f"group commit speedup at 8 streams only {ratio:.2f}x"
assert rows["group/streams=8"]["fences_per_txn"] < 0.25, \
    f"group fences/txn {rows['group/streams=8']['fences_per_txn']:.3f} >= 0.25"
assert rows["group/streams=8"]["batch_mean_txns"] > 4.0, \
    "8-stream batches did not form"
assert rows["group/streams=1"]["commit_p95_ns"] <= \
    rows["single/streams=1"]["commit_p95_ns"], "1-stream commit p95 regressed"
assert rows["des-group/users=100000"]["txn_p95_ns"] < \
    rows["des-single/users=100000"]["txn_p95_ns"], \
    "DES group p95 did not beat single at 100k users"
assert rows["batcher/threads=8"]["batch_mean_txns"] > 1.0, \
    "threaded batcher never coalesced concurrent committers"
print(f"group commit: OK (speedup = {ratio:.2f}x, fences/txn = "
      f"{rows['group/streams=8']['fences_per_txn']:.3f})")

# Multi-stream smoke specifics (§15): the full stream sweep is present, the
# 8-stream modeled throughput gate holds, fences/txn never grows with the
# stream count on the group path, and the cross-shard mix really went
# through the atomic cross-stream commit record.
with open(sys.argv[9]) as f:
    ms = json.load(f)
rows = {row["label"]: row["metrics"] for row in ms["rows"]}
expect = {f"sweep/streams={n}" for n in (1, 2, 4, 8, 16)}
expect |= {"group/streams=1", "group/streams=8"}
assert set(rows) == expect, f"rows: {set(rows)}"
speedup = rows["sweep/streams=8"]["speedup_vs_single_ring"]
assert speedup >= 3.0, f"8-stream speedup only {speedup:.2f}x"
assert rows["group/streams=8"]["fences_per_txn"] <= \
    rows["group/streams=1"]["fences_per_txn"] * 1.05, \
    "fences/txn grew with the stream count on the group path"
for n in (1, 2, 4, 8, 16):
    m = rows[f"sweep/streams={n}"]
    assert m["xstream_commits"] > 0, \
        f"streams={n}: no cross-stream commit record was ever staged"
    assert m["cross_shard_share"] > 0.05, \
        f"streams={n}: cross-shard mix only {m['cross_shard_share']:.3f}"
print(f"multistream: OK (8-stream speedup = {speedup:.2f}x, group fences/txn "
      f"= {rows['group/streams=8']['fences_per_txn']:.3f})")
EOF
