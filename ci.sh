#!/usr/bin/env bash
# CI entry point: Debug build with Address+UB sanitizers, full test suite.
#
# A Debug build keeps the TINCA debug invariants compiled in (NDEBUG off —
# e.g. TincaCache::assert_dirty_count cross-checks the incremental dirty
# counter against a full entry scan on every commit), and the sanitizers
# catch lifetime/aliasing mistakes the RelWithDebInfo tier-1 run would miss.
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR=${BUILD_DIR:-build-ci}
SAN_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DTINCA_WERROR=ON \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"

cmake --build "$BUILD_DIR" -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
