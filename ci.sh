#!/usr/bin/env bash
# CI entry point: Debug build with Address+UB sanitizers, full test suite.
#
# A Debug build keeps the TINCA debug invariants compiled in (NDEBUG off —
# e.g. TincaCache::assert_dirty_count cross-checks the incremental dirty
# counter against a full entry scan on every commit), and the sanitizers
# catch lifetime/aliasing mistakes the RelWithDebInfo tier-1 run would miss.
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR=${BUILD_DIR:-build-ci}
SAN_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DTINCA_WERROR=ON \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"

cmake --build "$BUILD_DIR" -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# ---------------------------------------------------------------------------
# Bench smoke: Release build, run two benches with --json and validate the
# machine-readable output against the tinca-bench-v1 schema.  Release because
# the JSON contract must hold in the configuration people actually benchmark,
# and because it keeps this stage fast.
BENCH_DIR=${BENCH_DIR:-build-ci-bench}
JSON_OUT=$(mktemp -d)
trap 'rm -rf "$JSON_OUT"' EXIT

cmake -B "$BENCH_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BENCH_DIR" -j "$(nproc)" \
  --target bench_micro_primitives bench_ablation_txn_batch bench_fault_sweep

"$BENCH_DIR/bench/bench_micro_primitives" \
  --benchmark_filter=BM_CacheEntryCodec --benchmark_min_time=0.05 \
  --json "$JSON_OUT/micro.json" > /dev/null
"$BENCH_DIR/bench/bench_ablation_txn_batch" \
  --json "$JSON_OUT/txn_batch.json" > /dev/null

# Fault-fuzz smoke (DESIGN.md §9): 1000 randomized fault schedules per stack
# at a fixed seed.  The binary exits nonzero on any recovery-invariant
# violation, so this line is the gate.
"$BENCH_DIR/bench/bench_fault_sweep" --schedules 1000 --seed 1 \
  --json "$JSON_OUT/fault_sweep.json" > /dev/null

python3 - "$JSON_OUT/micro.json" "$JSON_OUT/txn_batch.json" \
  "$JSON_OUT/fault_sweep.json" <<'EOF'
import json, numbers, sys

for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    assert doc["schema"] == "tinca-bench-v1", f"{path}: bad schema {doc['schema']!r}"
    assert doc["bench"], f"{path}: empty bench name"
    assert isinstance(doc["config"], dict), f"{path}: config not an object"
    assert doc["rows"], f"{path}: no result rows"
    for row in doc["rows"]:
        assert row["label"], f"{path}: row without label"
        assert row["metrics"], f"{path}: row {row['label']!r} has no metrics"
        for name, value in row["metrics"].items():
            assert isinstance(value, numbers.Real), \
                f"{path}: {row['label']}/{name} is not numeric: {value!r}"
    print(f"{path}: OK ({len(doc['rows'])} rows)")

# Fault-sweep specifics: all four stacks present, full schedule count, and
# zero recovery-invariant violations.
with open(sys.argv[3]) as f:
    sweep = json.load(f)
labels = {row["label"] for row in sweep["rows"]}
assert labels == {"Tinca", "Classic", "UBJ", "Sharded"}, f"stacks ran: {labels}"
for row in sweep["rows"]:
    m = row["metrics"]
    assert m["schedules"] >= 1000, f"{row['label']}: only {m['schedules']} schedules"
    assert m["violations"] == 0, f"{row['label']}: {m['violations']} violations"
    assert m["crashes"] > 0, f"{row['label']}: campaign never crashed"
print(f"fault sweep: OK ({len(sweep['rows'])} stacks, 0 violations)")
EOF
