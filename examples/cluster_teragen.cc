// Example: a 4-node cluster writing a TeraGen dataset through Tinca caches.
//
// Assembles the §5.3 topology — four data nodes, each with an emulated PCM
// cache over a modelled SSD, connected by 10 GbE — and pushes a dataset
// through the HDFS-style replication pipeline, printing per-node statistics.
//
// Run: ./build/examples/cluster_teragen [replicas=3] [megabytes=64]
#include <cstdio>
#include <cstdlib>

#include "cluster/minidfs.h"

int main(int argc, char** argv) {
  using namespace tinca;
  const std::uint32_t replicas =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 3;
  const std::uint64_t megabytes =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 64;

  cluster::DfsConfig cfg;
  cfg.nodes = 4;
  cfg.replicas = replicas;
  cfg.node.stack.kind = backend::StackKind::kTinca;
  cfg.node.stack.nvm_bytes = 32 << 20;
  cfg.node.stack.disk_blocks = 1 << 16;
  cfg.node.stack.tinca.ring_bytes = 1 << 20;

  std::printf("MiniDfs: %u nodes, %u replicas, 10 GbE, PCM cache + SSD\n",
              cfg.nodes, cfg.replicas);
  cluster::MiniDfs dfs(cfg);

  const std::uint64_t bytes = megabytes << 20;
  const sim::Ns t = dfs.run_teragen(bytes);
  std::printf("TeraGen wrote %llu MB (x%u replication) in %.3f virtual s"
              " => %.1f MB/s aggregate ingest\n",
              static_cast<unsigned long long>(megabytes), replicas,
              static_cast<double>(t) / 1e9,
              static_cast<double>(megabytes) / (static_cast<double>(t) / 1e9));

  std::printf("\nper-node statistics:\n");
  std::printf("  %-6s %14s %14s %14s\n", "node", "NVM MB stored", "clflush",
              "disk blocks");
  for (std::uint32_t i = 0; i < dfs.node_count(); ++i) {
    auto& stack = dfs.node(i).stack();
    std::printf("  %-6u %14.1f %14llu %14llu\n", i,
                static_cast<double>(stack.nvm().stats().bytes_stored) / (1 << 20),
                static_cast<unsigned long long>(stack.clflush_count()),
                static_cast<unsigned long long>(stack.disk_blocks_written()));
  }
  std::printf("\ntotals: %llu clflush, %llu disk blocks\n",
              static_cast<unsigned long long>(dfs.total_clflush()),
              static_cast<unsigned long long>(dfs.total_disk_writes()));
  return 0;
}
