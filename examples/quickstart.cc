// Quickstart: the Tinca public API in one file.
//
//   1. assemble a stack (virtual clock → emulated NVM → modelled SSD),
//   2. format a Tinca cache on it,
//   3. commit a multi-block transaction with the paper's primitives,
//   4. read it back through the cache,
//   5. remount (crash-recovery path) and show the data survived,
//   6. print the cost counters the paper's evaluation is built on.
//
// Build and run:  ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "blockdev/latency_block_device.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "tinca/tinca_cache.h"

int main() {
  using namespace tinca;

  // --- 1. Devices -----------------------------------------------------------
  sim::SimClock clock;                                  // virtual time
  nvm::NvmDevice nvm(32 << 20, pcm_profile(), clock);   // 32 MB emulated PCM
  blockdev::MemBlockDevice store(1 << 16);              // 256 MB "disk"
  blockdev::LatencyBlockDevice ssd(store, ssd_profile(), clock);

  // --- 2. Format the cache --------------------------------------------------
  core::TincaConfig cfg;
  cfg.ring_bytes = 1 << 20;  // the paper's 1 MB ring buffer
  auto cache = core::TincaCache::format(nvm, ssd, cfg);
  std::printf("Formatted Tinca cache: %llu data blocks, ring capacity %llu\n",
              static_cast<unsigned long long>(cache->capacity_blocks()),
              static_cast<unsigned long long>(cache->layout().ring_capacity));

  // --- 3. A transaction: three blocks committed atomically ------------------
  std::vector<std::byte> a(core::kBlockSize), b(core::kBlockSize),
      c(core::kBlockSize);
  fill_pattern(a, 1);
  fill_pattern(b, 2);
  fill_pattern(c, 3);

  core::Transaction txn = cache->tinca_init_txn();
  txn.add(/*disk block*/ 1001, a);
  txn.add(1002, b);
  txn.add(1003, c);
  cache->tinca_commit(txn);  // durable on return — no journal double write
  std::printf("Committed txn of 3 blocks; virtual time so far: %.1f us\n",
              static_cast<double>(clock.now()) / 1000.0);

  // --- 4. Read back through the cache ----------------------------------------
  std::vector<std::byte> got(core::kBlockSize);
  cache->read_block(1002, got);
  std::printf("Read block 1002: %s\n",
              fingerprint(got) == fingerprint(b) ? "contents OK" : "MISMATCH");

  // --- 5. Remount: the cache is persistent ----------------------------------
  cache.reset();  // drop all DRAM state (hash index, LRU, free lists)
  auto remounted = core::TincaCache::recover(nvm, ssd, cfg);
  remounted->read_block(1001, got);
  std::printf("After remount, block 1001: %s (recovered %llu entries)\n",
              fingerprint(got) == fingerprint(a) ? "contents OK" : "MISMATCH",
              static_cast<unsigned long long>(
                  remounted->stats().recovered_entries));

  // --- 6. The paper's cost counters ------------------------------------------
  std::printf("\nCost counters (what the paper's figures measure):\n");
  std::printf("  cache-line flushes : %llu\n",
              static_cast<unsigned long long>(nvm.stats().clflush));
  std::printf("  sfences            : %llu\n",
              static_cast<unsigned long long>(nvm.stats().sfence));
  std::printf("  NVM bytes stored   : %llu\n",
              static_cast<unsigned long long>(nvm.stats().bytes_stored));
  std::printf("  disk blocks written: %llu\n",
              static_cast<unsigned long long>(ssd.stats().blocks_written));
  std::printf("  virtual time       : %.1f us\n",
              static_cast<double>(clock.now()) / 1000.0);
  return 0;
}
