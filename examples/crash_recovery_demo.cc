// Example: watching Tinca's crash recovery work, step by step.
//
// Reproduces §5.1's recoverability experiment in a controlled way: a
// transaction is deliberately killed at three characteristic points of the
// commit protocol — (1) after a block's data is durable but before its cache
// entry switches, (2) mid-transaction after several blocks committed, and
// (3) after Tail is published — and after each simulated power failure the
// demo shows what recovery found and what state the cache rolled back to.
//
// Run: ./build/examples/crash_recovery_demo
#include <cstdio>
#include <vector>

#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "tinca/tinca_cache.h"

using namespace tinca;

namespace {

constexpr std::uint64_t kRing = 64 * 1024;

std::vector<std::byte> block_of(std::uint64_t seed) {
  std::vector<std::byte> b(core::kBlockSize);
  fill_pattern(b, seed);
  return b;
}

const char* describe(const std::vector<std::byte>& got, std::uint64_t old_seed,
                     std::uint64_t new_seed) {
  if (fingerprint(got) == fingerprint(block_of(old_seed))) return "OLD version";
  if (fingerprint(got) == fingerprint(block_of(new_seed))) return "NEW version";
  if (fingerprint(got) ==
      fingerprint(std::vector<std::byte>(core::kBlockSize, std::byte{0})))
    return "not present (zeros)";
  return "CORRUPT";
}

void crash_at(std::uint64_t step, const char* label) {
  sim::SimClock clock;
  nvm::NvmDevice nvm(8 << 20, pcm_profile(), clock);
  blockdev::MemBlockDevice disk(1 << 14);
  Rng rng(step);

  auto cache = core::TincaCache::format(nvm, disk,
                                        core::TincaConfig{.ring_bytes = kRing});
  // Seed three blocks with "old" contents, fully committed.
  {
    auto txn = cache->tinca_init_txn();
    for (std::uint64_t b = 0; b < 3; ++b) txn.add(100 + b, block_of(10 + b));
    cache->tinca_commit(txn);
  }

  // Now update all three in one transaction and kill it at `step`.
  nvm.injector.arm(step);
  bool crashed = false;
  try {
    auto txn = cache->tinca_init_txn();
    for (std::uint64_t b = 0; b < 3; ++b) txn.add(100 + b, block_of(20 + b));
    cache->tinca_commit(txn);
  } catch (const nvm::CrashException&) {
    crashed = true;
  }
  nvm.injector.disarm();

  std::printf("\n--- %s (crash point %llu) ---\n", label,
              static_cast<unsigned long long>(step));
  std::printf("power failure: %s, %zu unflushed lines discarded\n",
              crashed ? "yes" : "no (commit completed first)",
              nvm.dirty_lines());
  nvm.crash(rng, 0.5);

  auto recovered = core::TincaCache::recover(
      nvm, disk, core::TincaConfig{.ring_bytes = kRing});
  std::printf("recovery: %llu entries kept, %llu blocks revoked\n",
              static_cast<unsigned long long>(
                  recovered->stats().recovered_entries),
              static_cast<unsigned long long>(recovered->stats().revoked_blocks));
  std::vector<std::byte> got(core::kBlockSize);
  bool any_new = false, any_old = false;
  for (std::uint64_t b = 0; b < 3; ++b) {
    recovered->read_block(100 + b, got);
    const char* what = describe(got, 10 + b, 20 + b);
    if (fingerprint(got) == fingerprint(block_of(20 + b))) any_new = true;
    if (fingerprint(got) == fingerprint(block_of(10 + b))) any_old = true;
    std::printf("  block %llu -> %s\n", static_cast<unsigned long long>(100 + b),
                what);
  }
  if (any_new && any_old)
    std::printf("  !! INCONSISTENT: transaction applied partially\n");
  else
    std::printf("  atomic: transaction is all-%s\n", any_new ? "new" : "old");
}

}  // namespace

int main() {
  std::printf("Tinca crash-recovery demonstration (paper §4.5 / §5.1)\n");
  std::printf("A committed 3-block transaction is updated by a second\n");
  std::printf("transaction that is killed at different protocol points.\n");

  // Commit protocol points per block: begin, data-durable, entry-switched,
  // ring-recorded, head-moved (5); then one per role switch; then tail.
  crash_at(2, "crash after first block's data is durable, entry not yet");
  crash_at(9, "crash mid-transaction, two blocks already in the ring");
  crash_at(14, "crash during role switches, before Tail moves");
  crash_at(19, "crash after Tail published (transaction is durable)");
  std::printf("\nEvery outcome above must be atomic: all-old or all-new.\n");
  return 0;
}
