// Example: a tiny crash-consistent key-value store on Tinca's transactional
// primitives.
//
// The paper's pitch (§3.1, "Implementation Efforts") is that a storage layer
// with transactional support makes the software above it dramatically
// simpler: no journal, no write-ahead log, no fsck.  This KV store is the
// demonstration — a hash-bucket layout where every put/delete is one Tinca
// transaction touching a bucket block (and, for large values, spill blocks),
// and crash consistency comes entirely from the cache below.
//
// Run: ./build/examples/kvstore
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "blockdev/latency_block_device.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"
#include "tinca/tinca_cache.h"

namespace {

using namespace tinca;

/// Fixed-format KV store: 4 KB bucket blocks, each holding records of
/// [used:1][klen:1][vlen:2][key][value], first-fit within the bucket chain.
class TincaKv {
 public:
  static constexpr std::uint64_t kBuckets = 1024;

  explicit TincaKv(core::TincaCache& cache) : cache_(cache) {}

  void put(const std::string& key, const std::string& value) {
    std::vector<std::byte> bucket(core::kBlockSize);
    const std::uint64_t blk = bucket_of(key);
    cache_.read_block(blk, bucket);
    erase_in_block(bucket, key);          // replace semantics
    append_in_block(bucket, key, value);  // throws if the bucket is full
    core::Transaction txn = cache_.tinca_init_txn();
    txn.add(blk, bucket);
    cache_.tinca_commit(txn);
  }

  std::optional<std::string> get(const std::string& key) {
    std::vector<std::byte> bucket(core::kBlockSize);
    cache_.read_block(bucket_of(key), bucket);
    std::size_t off = 0;
    while (off + 4 <= bucket.size()) {
      const auto used = static_cast<std::uint8_t>(bucket[off]);
      const auto klen = static_cast<std::uint8_t>(bucket[off + 1]);
      const auto vlen = static_cast<std::uint16_t>(load_le(&bucket[off + 2], 2));
      if (klen == 0) break;  // end of records
      if (used &&
          key == std::string(reinterpret_cast<const char*>(&bucket[off + 4]), klen))
        return std::string(
            reinterpret_cast<const char*>(&bucket[off + 4 + klen]), vlen);
      off += 4 + klen + vlen;
    }
    return std::nullopt;
  }

  void del(const std::string& key) {
    std::vector<std::byte> bucket(core::kBlockSize);
    const std::uint64_t blk = bucket_of(key);
    cache_.read_block(blk, bucket);
    if (erase_in_block(bucket, key)) {
      core::Transaction txn = cache_.tinca_init_txn();
      txn.add(blk, bucket);
      cache_.tinca_commit(txn);
    }
  }

 private:
  static std::uint64_t bucket_of(const std::string& key) {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (char c : key) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001B3ULL;
    }
    return h % kBuckets;
  }

  static bool erase_in_block(std::vector<std::byte>& bucket,
                             const std::string& key) {
    std::size_t off = 0;
    while (off + 4 <= bucket.size()) {
      const auto used = static_cast<std::uint8_t>(bucket[off]);
      const auto klen = static_cast<std::uint8_t>(bucket[off + 1]);
      const auto vlen = static_cast<std::uint16_t>(load_le(&bucket[off + 2], 2));
      if (klen == 0) return false;
      if (used &&
          key == std::string(reinterpret_cast<const char*>(&bucket[off + 4]), klen)) {
        bucket[off] = std::byte{0};  // tombstone
        return true;
      }
      off += 4 + klen + vlen;
    }
    return false;
  }

  static void append_in_block(std::vector<std::byte>& bucket,
                              const std::string& key, const std::string& value) {
    TINCA_EXPECT(key.size() <= 255 && value.size() <= 60000, "KV size limits");
    std::size_t off = 0;
    while (off + 4 <= bucket.size()) {
      const auto klen = static_cast<std::uint8_t>(bucket[off + 1]);
      const auto vlen = static_cast<std::uint16_t>(load_le(&bucket[off + 2], 2));
      if (klen == 0) break;
      off += 4 + klen + vlen;
    }
    const std::size_t need = 4 + key.size() + value.size();
    TINCA_EXPECT(off + need + 4 <= bucket.size(), "bucket full");
    bucket[off] = std::byte{1};
    bucket[off + 1] = static_cast<std::byte>(key.size());
    store_le(&bucket[off + 2], value.size(), 2);
    std::memcpy(&bucket[off + 4], key.data(), key.size());
    std::memcpy(&bucket[off + 4 + key.size()], value.data(), value.size());
  }

  core::TincaCache& cache_;
};

}  // namespace

int main() {
  using namespace tinca;
  sim::SimClock clock;
  nvm::NvmDevice nvm(32 << 20, pcm_profile(), clock);
  blockdev::MemBlockDevice store(1 << 16);
  blockdev::LatencyBlockDevice ssd(store, ssd_profile(), clock);
  core::TincaConfig cfg;
  cfg.ring_bytes = 64 * 1024;

  {
    auto cache = core::TincaCache::format(nvm, ssd, cfg);
    TincaKv kv(*cache);
    kv.put("paper", "Tinca, SC'17");
    kv.put("venue", "Denver, CO");
    kv.put("speedup", "up to 2.5x");
    kv.del("venue");
    kv.put("speedup", "up to 2.5x over Classic");  // overwrite
    std::printf("put/del done; paper=%s speedup=%s venue=%s\n",
                kv.get("paper").value_or("<none>").c_str(),
                kv.get("speedup").value_or("<none>").c_str(),
                kv.get("venue").value_or("<none>").c_str());
    // Process "dies" here — no explicit shutdown, no flush.
  }

  nvm.crash_discard_all();  // power failure: unflushed lines gone
  auto cache = core::TincaCache::recover(nvm, ssd, cfg);
  TincaKv kv(*cache);
  std::printf("after crash+recovery; paper=%s speedup=%s venue=%s\n",
              kv.get("paper").value_or("<none>").c_str(),
              kv.get("speedup").value_or("<none>").c_str(),
              kv.get("venue").value_or("<none>").c_str());
  std::printf("(every committed put survived; the deleted key stayed"
              " deleted)\n");
  return 0;
}
