// Example: replay a block-level trace against Tinca or Classic.
//
// Trace format (one request per line; '#' starts a comment):
//
//     W <blkno>            write one 4 KB block
//     R <blkno>            read one 4 KB block
//     T <blk0> <blk1> ...  commit the listed blocks as one transaction
//     F                    flush everything to disk
//     C                    simulated power failure + recovery
//
// Usage: ./build/examples/trace_replay [tinca|classic] [trace-file]
// Without a trace file, a built-in demonstration trace is replayed.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "backend/stack_builder.h"
#include "backend/tinca_backend.h"
#include "blockdev/latency_block_device.h"
#include "blockdev/mem_block_device.h"
#include "common/bytes.h"

using namespace tinca;

namespace {

const char* kDemoTrace = R"(# demo: two transactions, reads, a crash, more work
T 100 101 102
R 100
W 200
T 100 300
C
R 100
R 300
W 201
F
)";

struct Replayer {
  explicit Replayer(bool use_tinca)
      : nvm(32 << 20, pcm_profile(), clock),
        store(1 << 16),
        ssd(store, ssd_profile(), clock) {
    if (use_tinca) {
      tinca_be = backend::TincaBackend::format(nvm, ssd, tinca_cfg);
    } else {
      classic::ClassicConfig cfg;
      cfg.journal_blocks = 2048;
      classic_be = backend::ClassicBackend::format(nvm, ssd, cfg);
    }
  }

  backend::TxnBackend& be() {
    return tinca_be ? static_cast<backend::TxnBackend&>(*tinca_be)
                    : static_cast<backend::TxnBackend&>(*classic_be);
  }

  void crash_and_recover() {
    Rng rng(seq);
    nvm.crash(rng, 0.5);
    if (tinca_be) {
      tinca_be = backend::TincaBackend::recover(nvm, ssd, tinca_cfg);
    } else {
      classic::ClassicConfig cfg;
      cfg.journal_blocks = 2048;
      classic_be = backend::ClassicBackend::recover(nvm, ssd, cfg);
    }
  }

  void replay_line(const std::string& line) {
    if (line.empty() || line[0] == '#') return;
    std::istringstream in(line);
    std::string op;
    in >> op;
    std::vector<std::byte> buf(4096);
    if (op == "W") {
      std::uint64_t blkno;
      in >> blkno;
      fill_pattern(buf, seq++);
      be().begin();
      be().stage(blkno, buf);
      be().commit();
      ++writes;
    } else if (op == "R") {
      std::uint64_t blkno;
      in >> blkno;
      be().read_block(blkno, buf);
      ++reads;
    } else if (op == "T") {
      be().begin();
      std::uint64_t blkno;
      std::uint64_t staged = 0;
      while (in >> blkno) {
        fill_pattern(buf, seq++);
        be().stage(blkno, buf);
        ++staged;
      }
      be().commit();
      ++txns;
      writes += staged;
    } else if (op == "F") {
      be().flush();
    } else if (op == "C") {
      crash_and_recover();
      ++crashes;
    } else {
      std::fprintf(stderr, "skipping unknown trace op: %s\n", op.c_str());
    }
  }

  sim::SimClock clock;
  nvm::NvmDevice nvm;
  blockdev::MemBlockDevice store;
  blockdev::LatencyBlockDevice ssd;
  core::TincaConfig tinca_cfg;
  std::unique_ptr<backend::TincaBackend> tinca_be;
  std::unique_ptr<backend::ClassicBackend> classic_be;
  std::uint64_t seq = 1;
  std::uint64_t writes = 0, reads = 0, txns = 0, crashes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bool use_tinca = argc < 2 || std::string(argv[1]) != "classic";
  Replayer replayer(use_tinca);
  std::printf("replaying against %s\n", use_tinca ? "Tinca" : "Classic");

  std::istringstream demo{kDemoTrace};
  std::ifstream file;
  std::istream* in = &demo;
  if (argc > 2) {
    file.open(argv[2]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[2]);
      return 1;
    }
    in = &file;
  }

  std::string line;
  while (std::getline(*in, line)) replayer.replay_line(line);

  std::printf("\nreplayed: %llu writes, %llu reads, %llu txns, %llu crashes\n",
              static_cast<unsigned long long>(replayer.writes),
              static_cast<unsigned long long>(replayer.reads),
              static_cast<unsigned long long>(replayer.txns),
              static_cast<unsigned long long>(replayer.crashes));
  std::printf("virtual time %.2f ms  |  clflush %llu  |  disk blocks %llu\n",
              static_cast<double>(replayer.clock.now()) / 1e6,
              static_cast<unsigned long long>(replayer.nvm.stats().clflush),
              static_cast<unsigned long long>(replayer.ssd.stats().blocks_written));
  return 0;
}
